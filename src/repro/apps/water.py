"""Water: molecular dynamics from SPLASH-1 (Section 3.2).

An N-body molecular simulation. The shared molecule array is divided into
equal contiguous chunks, one per processor. Each timestep computes
pairwise intermolecular forces — each processor handles the pairs
(i, j) with i in its chunk and j in the following half of the array
(wrapping) — accumulating contributions locally and then adding them into
the shared force array under per-chunk locks. This lock-protected
accumulation produces the *migratory* sharing pattern the paper
highlights, and (with chunk boundaries falling inside pages) the false
sharing that makes Water the one application where flush-updates,
incoming diffs, and shootdowns actually occur (Table 3). The paper ran
4096 molecules (4 Mbytes, 1847.6 s sequential).

The pair potential here is a simplified soft inverse-square interaction;
the lock/communication structure — not the chemistry — is what the
evaluation depends on.
"""

from __future__ import annotations

import numpy as np

from ..lower import READ, WRITE, RegionKernel
from .base import Application, split_range

#: CPU cost per pairwise interaction (the real Water does substantial
#: math per pair: O(100) flops for the water potential).
_PAIR_US = 352.0
#: Cache-miss bytes per pair (molecule records are compact; Water's data
#: set fits caches far better than SOR/Gauss).
_PAIR_MEM = 110.0
_DT = 0.002


class _WaterIntegrate(RegionKernel):
    """The integration phase: one super-step updating the owner's slice
    of pos/vel and clearing its force slice. The accumulation phase's
    locked writes to ``force`` are fenced off by the worker's barrier
    before this region; each owner touches only its own slice. Phase
    reasoning is beyond the static lockset (the dynamic detector proves
    these runs race-free)."""

    def __init__(self, env, pos, vel, force, lo: int, hi: int) -> None:
        super().__init__(env)
        self._pos, self._vel, self._force = pos, vel, force
        self._lo, self._hi = lo, hi
        count = hi - lo
        self.n = 1 if count > 0 else 0
        self.cost = env.compute(count * 0.3, count * 24)
        if not self.lowerable or self.n == 0:
            return
        w0, w1 = lo * 3, hi * 3
        # First-touch order matches interp: read force, vel, pos; then
        # write vel, pos, force.
        step = [(READ, p) for p in self.span_pages(force, w0, w1)]
        step += [(READ, p) for p in self.span_pages(vel, w0, w1)]
        step += [(READ, p) for p in self.span_pages(pos, w0, w1)]
        step += [(WRITE, p) for p in self.span_pages(vel, w0, w1)]
        step += [(WRITE, p) for p in self.span_pages(pos, w0, w1)]
        step += [(WRITE, p) for p in self.span_pages(force, w0, w1)]
        self.touches = [step]
        m = w1 - w0
        self._f = np.empty(m)
        self._v = np.empty(m)
        self._p = np.empty(m)
        self._zero = np.zeros(m)

    def ingest(self, i: int) -> None:
        w0, w1 = self._lo * 3, self._hi * 3
        self.read_span(self._force, w0, w1, self._f)
        self.read_span(self._vel, w0, w1, self._v)
        self.read_span(self._pos, w0, w1, self._p)

    def materialize(self, lo: int, hi: int) -> None:
        w0 = self._lo * 3
        v = self._v + _DT * self._f
        p = self._p + _DT * v
        self.write_span(self._vel, w0, v)
        self.write_span(self._pos, w0, p)
        self.write_span(self._force, w0, self._zero)

    def interp(self, env):
        lo, hi = self._lo, self._hi
        f = env.get_block(self._force, lo * 3, hi * 3)
        v = env.get_block(self._vel, lo * 3, hi * 3) + _DT * f
        p = env.get_block(self._pos, lo * 3, hi * 3) + _DT * v
        env.set_block(self._vel, lo * 3, v)
        env.set_block(self._pos, lo * 3, p)
        env.set_block(self._force, lo * 3, np.zeros((hi - lo) * 3))
        yield self.cost


class Water(Application):
    name = "Water"
    paper_problem_size = "4096 mols (4 Mbytes)"
    paper_seq_time_s = 1847.6
    write_double_us = 23.0
    sync_style = "locks"

    def default_params(self) -> dict:
        return {"mols": 192, "steps": 3}

    def small_params(self) -> dict:
        return {"mols": 48, "steps": 2}

    def declare(self, segment, params: dict) -> None:
        n = params["mols"]
        segment.alloc("pos", n * 3)
        segment.alloc("vel", n * 3)
        segment.alloc("force", n * 3)

    def worker(self, env, params: dict):
        n, steps = params["mols"], params["steps"]
        pos, vel, force = env.arr("pos"), env.arr("vel"), env.arr("force")
        me, nprocs = env.rank, env.nprocs

        if me == 0:
            grid = np.arange(n)
            init = np.empty(n * 3)
            init[0::3] = (grid % 8) * 1.1
            init[1::3] = ((grid // 8) % 8) * 1.1
            init[2::3] = (grid // 64) * 1.1
            env.set_block(pos, 0, init)
            env.set_block(vel, 0, np.sin(np.arange(n * 3) * 0.7) * 0.05)
            yield env.compute(n * 0.05, n * 24 * 0.2)
        env.end_init()
        yield from env.barrier()

        lo, hi = split_range(n, nprocs, me)
        half = n // 2
        chunk_of = [split_range(n, nprocs, r) for r in range(nprocs)]
        integrate = _WaterIntegrate(env, pos, vel, force, lo, hi)

        def owner_of(mol: int) -> int:
            for r, (clo, chi) in enumerate(chunk_of):
                if clo <= mol < chi:
                    return r
            return nprocs - 1

        for _ in range(steps):
            # --- force computation phase -------------------------------------
            all_pos = env.get_block(pos, 0, n * 3).reshape(n, 3)
            acc = np.zeros((n, 3))
            pairs = 0
            for i in range(lo, hi):
                js = np.arange(i + 1, i + half + 1) % n
                d = all_pos[js] - all_pos[i]
                r2 = (d * d).sum(axis=1) + 0.1
                f = d / (r2 * np.sqrt(r2))[:, None]
                acc[i] += f.sum(axis=0)
                acc[js] -= f
                pairs += len(js)
            yield env.compute(pairs * _PAIR_US, pairs * _PAIR_MEM)

            # Accumulate into the shared force array, chunk by chunk under
            # that chunk's lock (migratory sharing).
            for r in range(nprocs):
                clo, chi = chunk_of[(me + r) % nprocs]
                if clo == chi:
                    continue
                contrib = acc[clo:chi].reshape(-1)
                if not np.any(contrib):
                    continue
                target = (me + r) % nprocs
                yield from env.acquire(target)
                cur = env.get_block(force, clo * 3, chi * 3)
                env.set_block(force, clo * 3, cur + contrib)
                yield env.compute((chi - clo) * 0.05, (chi - clo) * 24)
                env.release(target)
            yield from env.barrier()

            # --- integration phase: owners update their molecules ------------
            yield from env.run_region(integrate)
            yield from env.barrier()

    def result_arrays(self, params: dict):
        return ["pos", "vel"]

    def results_equal(self, name, expected, actual, rtol, atol):
        # Force accumulation order differs between schedules; allow
        # floating-point reassociation noise.
        return bool(np.allclose(expected, actual, rtol=1e-6, atol=1e-9))

"""Gauss: Gaussian elimination with back-substitution (Section 3.2).

Solves A·x = b on the augmented matrix [A | b]. Rows are distributed
cyclically for load balance; each row is computed on by exactly one
processor. A per-row flag announces that the row is available to others
for use as a pivot (single producer, multiple consumers — the paper notes
this access pattern is ideally a broadcast, which is precisely what the
two-level protocols approximate by coalescing the per-node fetches of the
pivot row).

Rows are padded to page boundaries, matching the paper's geometry (a
2046-element row is exactly two 8 Kbyte pages): rows of different owners
never share a page, so — as in the paper's Table 3 — Gauss produces no
shootdowns under 2LS. Gauss remains matrix-bound like SOR: its working
set misses the second-level cache, so clustering costs node-bus
bandwidth. The paper ran 2046×2046 (33 Mbytes, 953.7 s sequential).
"""

from __future__ import annotations

import numpy as np

from .base import Application

#: CPU cost per multiply-add of row elimination.
_FLOP_US = 0.54
#: Cache-miss bytes per element touched (streaming rows, cache-hostile).
_MEM_BYTES = 90.0


class Gauss(Application):
    name = "Gauss"
    paper_problem_size = "2046x2046 (33 Mbytes)"
    paper_seq_time_s = 953.7
    sync_style = "flags"
    write_double_us = 4.5

    def default_params(self) -> dict:
        return {"n": 224}

    def small_params(self) -> dict:
        return {"n": 24}

    def flags_needed(self, params: dict) -> dict[str, int]:
        return {"pivot": params["n"], "solved": 1}

    @staticmethod
    def _row_stride(n: int, words_per_page: int) -> int:
        """Augmented rows (n coefficients + the RHS element) padded to page
        boundaries, as at the paper's scale: rows of different owners
        never share a page."""
        return ((n + 1 + words_per_page - 1)
                // words_per_page) * words_per_page

    def declare(self, segment, params: dict) -> None:
        n = params["n"]
        stride = self._row_stride(n, segment.config.words_per_page)
        segment.alloc("A", n * stride)  # augmented: row i's RHS at col n
        segment.alloc("x", n)

    def worker(self, env, params: dict):
        n = params["n"]
        stride = self._row_stride(n, env.words_per_page)
        A, x = env.arr("A"), env.arr("x")
        me, nprocs = env.rank, env.nprocs

        if me == 0:
            for i in range(n):
                row = np.empty(n + 1)
                row[:n] = ((np.arange(n) * 11 + i * 17) % 19 - 9) / 19.0
                row[i] += n
                row[n] = ((i * 5 + 3) % 13) / 13.0  # RHS
                env.set_block(A, i * stride, row)
            yield env.compute(n * n * 0.002, n * n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        my_rows = list(range(me, n, nprocs))
        # Pipelined elimination: process pivots in order; when the pivot
        # index reaches one of our rows, that row is final — announce it.
        for k in range(n):
            if k % nprocs == me:
                env.flag_set("pivot", k)
            else:
                yield from env.flag_wait("pivot", k)
            # Pivot row columns k..n-1 plus its RHS element.
            pivot_row = env.get_block(A, k * stride + k, k * stride + n + 1)
            pivot_diag = pivot_row[0]
            for i in my_rows:
                if i <= k:
                    continue
                row = env.get_block(A, i * stride + k, i * stride + n + 1)
                factor = row[0] / pivot_diag
                row -= factor * pivot_row  # the RHS transforms identically
                row[0] = 0.0
                env.set_block(A, i * stride + k, row)
                m = n - k
                yield env.compute(2 * m * _FLOP_US, m * _MEM_BYTES)

        yield from env.barrier()
        # Back-substitution on processor 0 (a small serial tail).
        if me == 0:
            sol = np.zeros(n)
            for i in range(n - 1, -1, -1):
                row = env.get_block(A, i * stride + i, i * stride + n + 1)
                s = row[n - i] - float(row[1:n - i] @ sol[i + 1:])
                sol[i] = s / row[0]
                yield env.compute(2 * (n - i) * _FLOP_US, (n - i) * 8.0)
            env.set_block(x, 0, sol)
            env.flag_set("solved", 0)
        else:
            yield from env.flag_wait("solved", 0)

    def result_arrays(self, params: dict):
        return ["A", "x"]

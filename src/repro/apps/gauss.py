"""Gauss: Gaussian elimination with back-substitution (Section 3.2).

Solves A·x = b on the augmented matrix [A | b]. Rows are distributed
cyclically for load balance; each row is computed on by exactly one
processor. A per-row flag announces that the row is available to others
for use as a pivot (single producer, multiple consumers — the paper notes
this access pattern is ideally a broadcast, which is precisely what the
two-level protocols approximate by coalescing the per-node fetches of the
pivot row).

Rows are padded to page boundaries, matching the paper's geometry (a
2046-element row is exactly two 8 Kbyte pages): rows of different owners
never share a page, so — as in the paper's Table 3 — Gauss produces no
shootdowns under 2LS. Gauss remains matrix-bound like SOR: its working
set misses the second-level cache, so clustering costs node-bus
bandwidth. The paper ran 2046×2046 (33 Mbytes, 953.7 s sequential).
"""

from __future__ import annotations

import numpy as np

from ..lower import READ, WRITE, RegionKernel
from .base import Application

#: CPU cost per multiply-add of row elimination.
_FLOP_US = 0.54
#: Cache-miss bytes per element touched (streaming rows, cache-hostile).
_MEM_BYTES = 90.0


class _GaussElim(RegionKernel):
    """One pivot's elimination over a processor's remaining rows: each
    super-step reads row *i*'s columns ``k..n`` (coefficients plus RHS),
    subtracts its multiple of the pivot row, and writes the span back.
    The pivot row itself is fetched in the worker *before* the region
    (its flag wait is synchronization and must stay out of the kernel);
    the private copy ``get_block`` returns is closed over here.
    """

    def __init__(self, env, A, stride: int, k: int, n: int,
                 my_rows, pivot_row: np.ndarray) -> None:
        super().__init__(env)
        self._A = A
        self._stride = stride
        self._k = k
        self._n = n
        self._rows = [i for i in my_rows if i > k]
        self._pivot_row = pivot_row
        self.n = len(self._rows)
        m = n - k
        self.cost = env.compute(2 * m * _FLOP_US, m * _MEM_BYTES)
        if not self.lowerable or self.n == 0:
            return
        # Touch lists mirror the interpreted body: get_block faults the
        # row span's pages ascending for READ, then set_block re-faults
        # the same span for WRITE. Rows are page-padded (no page is
        # shared between steps), so the spans are disjoint across steps.
        touches = []
        for i in self._rows:
            span = self.span_pages(A, i * stride + k, i * stride + n + 1)
            touches.append([(READ, p) for p in span]
                           + [(WRITE, p) for p in span])
        self.touches = touches
        #: Staged row spans, one per step (m + 1 words: columns k..n).
        self._staged = np.empty((self.n, m + 1))

    def ingest(self, i: int) -> None:
        base = self._rows[i] * self._stride + self._k
        self.read_span(self._A, base, base + self._n - self._k + 1,
                       self._staged[i])

    def materialize(self, lo: int, hi: int) -> None:
        # Elementwise identical to the interp body: factor = row[0] /
        # pivot_diag, row -= factor * pivot_row, row[0] = 0 — the same
        # float64 multiply/subtract per element, just batched over rows.
        staged = self._staged[lo:hi]
        pivot_row = self._pivot_row
        factors = staged[:, 0] / pivot_row[0]
        staged -= factors[:, None] * pivot_row
        staged[:, 0] = 0.0
        stride, k = self._stride, self._k
        for j in range(lo, hi):
            self.write_span(self._A, self._rows[j] * stride + k,
                            self._staged[j])

    def interp(self, env):
        A = self._A
        stride, k, n = self._stride, self._k, self._n
        pivot_row = self._pivot_row
        pivot_diag = pivot_row[0]
        row_step = self.cost
        get_block, set_block = env.get_block, env.set_block
        for i in self._rows:
            row = get_block(A, i * stride + k, i * stride + n + 1)
            factor = row[0] / pivot_diag
            row -= factor * pivot_row  # the RHS transforms identically
            row[0] = 0.0
            set_block(A, i * stride + k, row)
            yield row_step


class Gauss(Application):
    name = "Gauss"
    paper_problem_size = "2046x2046 (33 Mbytes)"
    paper_seq_time_s = 953.7
    sync_style = "flags"
    write_double_us = 4.5

    def default_params(self) -> dict:
        return {"n": 224}

    def small_params(self) -> dict:
        return {"n": 24}

    def flags_needed(self, params: dict) -> dict[str, int]:
        return {"pivot": params["n"], "solved": 1}

    @staticmethod
    def _row_stride(n: int, words_per_page: int) -> int:
        """Augmented rows (n coefficients + the RHS element) padded to page
        boundaries, as at the paper's scale: rows of different owners
        never share a page."""
        return ((n + 1 + words_per_page - 1)
                // words_per_page) * words_per_page

    def declare(self, segment, params: dict) -> None:
        n = params["n"]
        stride = self._row_stride(n, segment.config.words_per_page)
        segment.alloc("A", n * stride)  # augmented: row i's RHS at col n
        segment.alloc("x", n)

    def worker(self, env, params: dict):
        n = params["n"]
        stride = self._row_stride(n, env.words_per_page)
        A, x = env.arr("A"), env.arr("x")
        me, nprocs = env.rank, env.nprocs

        if me == 0:
            for i in range(n):
                row = np.empty(n + 1)
                row[:n] = ((np.arange(n) * 11 + i * 17) % 19 - 9) / 19.0
                row[i] += n
                row[n] = ((i * 5 + 3) % 13) / 13.0  # RHS
                env.set_block(A, i * stride, row)
            yield env.compute(n * n * 0.002, n * n * 8 * 0.2)
        env.end_init()
        yield from env.barrier()

        my_rows = list(range(me, n, nprocs))
        # Pipelined elimination: process pivots in order; when the pivot
        # index reaches one of our rows, that row is final — announce it.
        # Each pivot's row sweep is a lowerable region (DESIGN.md §14):
        # the flag synchronization and the pivot-row fetch stay out here.
        for k in range(n):
            if k % nprocs == me:
                env.flag_set("pivot", k)
            else:
                yield from env.flag_wait("pivot", k)
            # Pivot row columns k..n-1 plus its RHS element.
            pivot_row = env.get_block(A, k * stride + k, k * stride + n + 1)
            elim = _GaussElim(env, A, stride, k, n, my_rows, pivot_row)
            yield from env.run_region(elim)

        yield from env.barrier()
        # Back-substitution on processor 0 (a small serial tail).
        if me == 0:
            sol = np.zeros(n)
            for i in range(n - 1, -1, -1):
                row = env.get_block(A, i * stride + i, i * stride + n + 1)
                s = row[n - i] - float(row[1:n - i] @ sol[i + 1:])
                sol[i] = s / row[0]
                yield env.compute(2 * (n - i) * _FLOP_US, (n - i) * 8.0)
            env.set_block(x, 0, sol)
            env.flag_set("solved", 0)
        else:
            yield from env.flag_wait("solved", 0)

    def result_arrays(self, params: dict):
        return ["A", "x"]

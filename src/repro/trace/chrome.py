"""Chrome ``trace_event`` export.

Converts a :class:`~repro.trace.Tracer`'s events into the Trace Event
Format consumed by Perfetto (https://ui.perfetto.dev) and Chrome's
``about:tracing``: one process per simulated node, one thread (track)
per simulated processor, duration events (``ph: "X"``) for spans such
as fault service, lock holds, and time-bucket charges, and instant
events (``ph: "i"``) for faults-of-a-moment such as diffs, shootdowns,
and write notices. Memory Channel wire activity gets its own process so
network occupancy reads as a separate swim-lane.

Timestamps are microseconds in both systems, so simulated times pass
through unchanged.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .events import NO_PROC, TraceEvent
from .tracer import Tracer

#: pid offset for the synthetic Memory Channel process (placed after
#: the last node so node pids equal node ids).
_MC_TID = 0


def _mc_pid(events: Iterable[TraceEvent], meta: dict) -> int:
    nodes = meta.get("nodes")
    if nodes is None:
        nodes = max((ev.node for ev in events), default=-1) + 1
    return int(nodes)


def to_chrome_trace(tracer: Tracer) -> dict:
    """The full Chrome ``trace_event`` JSON document, as a dict."""
    events = tracer.events
    mc_pid = _mc_pid(events, tracer.meta)

    out: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()
    for ev in sorted(events, key=lambda e: (e.t0, e.proc, e.kind)):
        pid = mc_pid if ev.node == NO_PROC else ev.node
        tid = _MC_TID if ev.proc == NO_PROC else ev.proc
        seen_tracks.add((pid, tid))
        args: dict = {}
        if ev.obj is not None:
            args["obj"] = ev.obj
        args.update(ev.payload)
        rec = {
            "name": str(ev.kind),
            "cat": ev.family,
            "ts": ev.t0,
            "pid": pid,
            "tid": tid,
        }
        if args:
            rec["args"] = args
        if ev.dur > 0:
            rec["ph"] = "X"
            rec["dur"] = ev.dur
        else:
            rec["ph"] = "i"
            rec["s"] = "t"  # thread-scoped instant
        out.append(rec)

    out.extend(_metadata_events(seen_tracks, mc_pid))
    doc = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
    }
    if tracer.meta:
        doc["otherData"] = {k: v for k, v in tracer.meta.items()
                            if isinstance(v, (str, int, float, bool))}
    if tracer.dropped:
        doc.setdefault("otherData", {})["dropped_events"] = tracer.dropped
    return doc


def _metadata_events(tracks: set[tuple[int, int]], mc_pid: int) -> list[dict]:
    """process/thread naming and ordering metadata."""
    meta: list[dict] = []
    for pid in sorted({p for p, _ in tracks}):
        name = "Memory Channel" if pid == mc_pid else f"node {pid}"
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "args": {"name": name}})
        meta.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                     "args": {"sort_index": pid}})
    for pid, tid in sorted(tracks):
        name = "wire" if pid == mc_pid else f"cpu {tid}"
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    return meta


def write_chrome_trace(tracer: Tracer, path_or_file: str | IO[str]) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    doc = to_chrome_trace(tracer)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(doc, fh)
    return len(doc["traceEvents"])

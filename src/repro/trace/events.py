"""Typed protocol-event records for the tracing layer.

A :class:`TraceEvent` is one thing that happened on the simulated
timeline: a page fault being serviced, a page or diff moving over the
Memory Channel, a lock being held or waited for, a barrier episode, a
time-bucket charge. Events with ``dur > 0`` are *spans* (they occupy an
interval of simulated time on one processor's track); events with
``dur == 0`` are *instants*.

Events are plain data — producing one never touches simulation state —
and every field is JSON-serializable so consumers (the Chrome exporter,
the contention profiler) need no further translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ``proc``/``node`` value for events not attributable to a processor
#: (Memory Channel wire activity, write-notice deliveries).
NO_PROC = -1

#: Event kinds emitted by the instrumented stack, grouped by family.
#: The set is advisory, not closed: consumers must tolerate unknown
#: kinds (instrumentation grows faster than consumers).
KIND_FAMILIES = {
    "fault": ("read_fault", "write_fault"),
    "transfer": ("page_fetch", "excl_break", "page_flush", "relocation"),
    "diff": ("diff_in", "diff_out"),
    "shootdown": ("shootdown",),
    "notice": ("write_notice",),
    "sync": ("lock_wait", "lock_hold", "flag_set", "flag_wait",
             "barrier", "barrier_arrive"),
    "request": ("request_service",),
    "mc": ("mc_word", "mc_transfer"),
    "bucket": ("user", "protocol", "polling", "comm_wait", "write_double"),
    "sim": ("wait",),
}

#: kind -> family, for consumers that group by family.
KIND_FAMILY = {kind: family
               for family, kinds in KIND_FAMILIES.items()
               for kind in kinds}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One protocol event on the simulated timeline.

    ``obj`` identifies what the event is about — a page number, a lock
    id, a barrier episode, a traffic category — and ``payload`` carries
    kind-specific detail such as bytes moved.
    """

    kind: str
    #: Global processor id, or :data:`NO_PROC` for network-level events.
    proc: int
    #: Node id of ``proc`` (:data:`NO_PROC` when proc is NO_PROC).
    node: int
    #: Simulated start time, microseconds.
    t0: float
    #: Simulated duration, microseconds (0 for instant events).
    dur: float = 0.0
    #: Page / lock / barrier-episode / category identifier.
    obj: int | str | None = None
    payload: dict = field(default_factory=dict)

    @property
    def t1(self) -> float:
        return self.t0 + self.dur

    @property
    def family(self) -> str:
        return KIND_FAMILY.get(self.kind, "other")

    @property
    def bytes(self) -> int:
        """Bytes moved by this event (0 when not a data-movement event)."""
        return int(self.payload.get("bytes", 0))

    def to_json(self) -> dict:
        out = {"kind": self.kind, "proc": self.proc, "node": self.node,
               "t0": self.t0, "dur": self.dur}
        if self.obj is not None:
            out["obj"] = self.obj
        if self.payload:
            out["payload"] = self.payload
        return out

"""Protocol event tracing, contention profiling, and Chrome export.

See :mod:`repro.trace.tracer` for the collection model,
:mod:`repro.trace.chrome` for the Perfetto-viewable export, and
:mod:`repro.trace.profile` for derived contention reports.
"""

from .events import KIND_FAMILIES, KIND_FAMILY, NO_PROC, TraceEvent
from .tracer import DEFAULT_CAPACITY, Tracer, attach_tracer, merge_events
from .chrome import to_chrome_trace, write_chrome_trace
from .profile import ContentionProfile

__all__ = [
    "KIND_FAMILIES",
    "KIND_FAMILY",
    "NO_PROC",
    "TraceEvent",
    "DEFAULT_CAPACITY",
    "Tracer",
    "attach_tracer",
    "merge_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "ContentionProfile",
]

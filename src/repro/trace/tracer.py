"""The event collector: a bounded ring buffer of :class:`TraceEvent`.

A :class:`Tracer` is attached to a configured execution by
:func:`attach_tracer` (the parallel runtime does this when tracing is
enabled via ``MachineConfig(tracing=True)`` or the
``repro.runtime.tracing()`` context manager). Instrumented code holds a
``trace`` attribute that is ``None`` by default; every instrumentation
site is guarded by ``if trace is not None`` so a run without tracing
executes exactly the code it executed before tracing existed.

Like the correctness checker (:mod:`repro.check`), tracing is strictly
observational: emitting an event never charges time, never touches
protocol or simulator state, and never perturbs ``RunStats`` — a traced
run and an untraced run of the same program produce identical statistics
(``tests/test_trace.py`` asserts this under all four protocols).

The buffer is bounded (default ~2M events): when full, the *oldest*
events are dropped, keeping the tail of the execution — the usual region
of interest when diagnosing why a run is slow. ``dropped`` reports how
many events fell out.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from .events import NO_PROC, TraceEvent

#: Default ring-buffer capacity (events). At the experiment scale a
#: full 32-processor application run emits a few hundred thousand to a
#: few million events; the cap bounds host memory, not simulated work.
DEFAULT_CAPACITY = 2_000_000


class Tracer:
    """Collects :class:`TraceEvent` records into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events emitted (including any that fell off the buffer).
        self.emitted = 0
        #: Run metadata, filled by :meth:`finalize`.
        self.meta: dict = {}

    # --- emission (called from instrumented code) --------------------------

    def span(self, kind: str, proc, t0: float, dur: float,
             obj: int | str | None = None, **payload) -> None:
        """Record a duration event on ``proc``'s track.

        ``proc`` is a :class:`~repro.cluster.machine.Processor` (or any
        object with ``global_id`` and ``node.id``), or ``None`` for
        events that belong to no processor.
        """
        self.emitted += 1
        if proc is None:
            pid, nid = NO_PROC, NO_PROC
        else:
            pid, nid = proc.global_id, proc.node.id
        self._buf.append(TraceEvent(kind, pid, nid, t0, dur, obj, payload))

    def instant(self, kind: str, proc, t: float,
                obj: int | str | None = None, **payload) -> None:
        """Record a point event (``dur == 0``)."""
        self.span(kind, proc, t, 0.0, obj, **payload)

    # --- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buf)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._buf)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring buffer (oldest-first)."""
        return self.emitted - len(self._buf)

    def by_kind(self, *kinds: str) -> list[TraceEvent]:
        want = frozenset(kinds)
        return [ev for ev in self._buf if ev.kind in want]

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ev in self._buf:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    # --- lifecycle ---------------------------------------------------------

    def finalize(self, **meta) -> None:
        """Record end-of-run metadata (app, protocol, exec time, shape).

        Also stamps the ring buffer's final drop count into the
        metadata, so exports and the metrics store see how much of the
        run the surviving events actually cover.
        """
        self.meta.update(meta)
        self.meta["trace_dropped"] = self.dropped


def attach_tracer(cluster, protocol,
                  capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Create a :class:`Tracer` and install it at every emission site.

    Mirrors :func:`repro.check.attach_checker`: must run before the
    simulation starts; events preceding attachment are simply absent.
    """
    tracer = Tracer(capacity=capacity)
    cluster.trace = tracer
    for proc in cluster.processors:
        proc.trace = tracer
    cluster.mc.trace = tracer
    protocol.trace = tracer
    for board in protocol.boards:
        board.trace = tracer
    return tracer


def merge_events(tracers: Iterable[Tracer]) -> list[TraceEvent]:
    """All events of several tracers, ordered by start time."""
    out: list[TraceEvent] = []
    for tracer in tracers:
        out.extend(tracer)
    out.sort(key=lambda ev: (ev.t0, ev.proc, ev.kind))
    return out

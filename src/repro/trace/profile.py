"""Contention reports derived from a trace.

Turns the raw event stream into the tables you actually read when a run
is slow:

* **hot pages** — per-page fault counts, page transfers, diff bytes,
  shootdowns, and total fault-service time, ranked by service time;
* **synchronization** — per-lock (and per-flag) acquire counts, hold
  vs. wait time attribution, holder transfers, and handoff latency;
* **barrier episodes** — per-episode arrival imbalance (the spread
  between the first and last arriving processor) and departure waits;
* **Memory Channel timeline** — bytes on the wire per traffic category
  across equal time slices of the run.

Everything renders through :func:`repro.stats.report.format_table`, the
same monospace layout as the paper tables, and exports as JSON via
:meth:`ContentionProfile.to_json`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..stats.report import format_table
from .events import TraceEvent
from .tracer import Tracer


@dataclass
class _PageStats:
    read_faults: int = 0
    write_faults: int = 0
    fetches: int = 0
    diff_bytes: int = 0
    shootdowns: int = 0
    notices: int = 0
    service_us: float = 0.0

    @property
    def faults(self) -> int:
        return self.read_faults + self.write_faults


@dataclass
class _LockStats:
    acquires: int = 0
    hold_us: float = 0.0
    wait_us: float = 0.0
    max_wait_us: float = 0.0
    transfers: int = 0
    transfer_us: float = 0.0
    _holds: list = field(default_factory=list)  # (t0, t1, proc)


@dataclass
class _EpisodeStats:
    arrivals: list = field(default_factory=list)   # span start times
    waits: list = field(default_factory=list)      # span durations

    @property
    def spread_us(self) -> float:
        return (max(self.arrivals) - min(self.arrivals)) if self.arrivals \
            else 0.0


class ContentionProfile:
    """Aggregated contention view of one traced execution."""

    def __init__(self, tracer: Tracer, *, top_pages: int = 12,
                 top_episodes: int = 10, bins: int = 10) -> None:
        self.meta = dict(tracer.meta)
        self.kind_counts = tracer.kind_counts()
        self.dropped = tracer.dropped
        self.top_pages = top_pages
        self.top_episodes = top_episodes
        self.num_bins = bins

        self.pages: dict[int, _PageStats] = defaultdict(_PageStats)
        self.locks: dict[str, _LockStats] = defaultdict(_LockStats)
        self.episodes: dict[int, _EpisodeStats] = defaultdict(_EpisodeStats)
        self._mc_events: list[TraceEvent] = []
        end = float(self.meta.get("exec_time_us") or 0.0)

        for ev in tracer:
            end = max(end, ev.t1)
            self._consume(ev)
        self.exec_time_us = end
        self._finish_locks()

    # --- aggregation --------------------------------------------------------

    def _consume(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "read_fault" or kind == "write_fault":
            ps = self.pages[int(ev.obj)]
            if kind == "read_fault":
                ps.read_faults += 1
            else:
                ps.write_faults += 1
            ps.service_us += ev.dur
        elif kind in ("page_fetch", "excl_break"):
            self.pages[int(ev.obj)].fetches += 1
        elif kind in ("diff_in", "diff_out"):
            self.pages[int(ev.obj)].diff_bytes += ev.bytes
        elif kind == "shootdown":
            self.pages[int(ev.obj)].shootdowns += 1
        elif kind == "write_notice":
            self.pages[int(ev.obj)].notices += 1
        elif kind == "lock_hold":
            ls = self.locks[str(ev.obj)]
            ls.acquires += 1
            ls.hold_us += ev.dur
            ls._holds.append((ev.t0, ev.t1, ev.proc))
        elif kind in ("lock_wait", "flag_wait"):
            ls = self.locks[str(ev.obj)]
            ls.wait_us += ev.dur
            ls.max_wait_us = max(ls.max_wait_us, ev.dur)
            if kind == "flag_wait":
                ls.acquires += 1
        elif kind == "barrier":
            es = self.episodes[int(ev.obj)]
            es.arrivals.append(ev.t0)
            es.waits.append(ev.dur)
        elif kind in ("mc_word", "mc_transfer"):
            self._mc_events.append(ev)

    def _finish_locks(self) -> None:
        """Holder-transfer counts and handoff latency from hold spans."""
        for ls in self.locks.values():
            holds = sorted(ls._holds)
            for (_, prev_end, prev_proc), (t0, _, proc) in zip(holds,
                                                              holds[1:]):
                if proc != prev_proc:
                    ls.transfers += 1
                    ls.transfer_us += max(0.0, t0 - prev_end)
            ls._holds = []

    # --- derived tables -----------------------------------------------------

    def hot_pages(self) -> list[tuple[int, _PageStats]]:
        """Pages ranked by total fault-service time (busiest first)."""
        ranked = sorted(self.pages.items(),
                        key=lambda kv: (kv[1].service_us, kv[1].faults),
                        reverse=True)
        return ranked[:self.top_pages]

    def lock_table(self) -> list[tuple[str, _LockStats]]:
        return sorted(self.locks.items(),
                      key=lambda kv: kv[1].wait_us + kv[1].hold_us,
                      reverse=True)

    def barrier_table(self) -> list[tuple[int, _EpisodeStats]]:
        """Episodes ranked by arrival imbalance (most skewed first)."""
        ranked = sorted(self.episodes.items(),
                        key=lambda kv: kv[1].spread_us, reverse=True)
        return ranked[:self.top_episodes]

    def mc_timeline(self) -> dict[str, list[int]]:
        """Bytes per traffic category per time slice of the run."""
        bins = self.num_bins
        width = self.exec_time_us / bins if self.exec_time_us else 1.0
        out: dict[str, list[int]] = defaultdict(lambda: [0] * bins)
        for ev in self._mc_events:
            slot = min(bins - 1, int(ev.t0 / width))
            out[str(ev.obj)][slot] += ev.bytes
        return dict(sorted(out.items(),
                           key=lambda kv: sum(kv[1]), reverse=True))

    # --- rendering ----------------------------------------------------------

    def format(self) -> str:
        sections = [self._format_header()]
        if self.pages:
            sections.append(self._format_pages())
        if self.locks:
            sections.append(self._format_locks())
        if self.episodes:
            sections.append(self._format_barriers())
        if self._mc_events:
            sections.append(self._format_mc())
        return "\n\n".join(sections)

    def _format_header(self) -> str:
        app = self.meta.get("app", "?")
        protocol = self.meta.get("protocol", "?")
        shape = (f"{self.meta.get('nodes', '?')}x"
                 f"{self.meta.get('procs_per_node', '?')}")
        lines = [
            f"Contention profile — {app} under {protocol} on {shape} "
            f"({self.exec_time_us / 1e6:.3f} s simulated)",
            "events: " + ", ".join(f"{k}={v}"
                                   for k, v in self.kind_counts.items()
                                   if v) + f", trace_dropped={self.dropped}",
        ]
        if self.dropped:
            lines.append(f"warning: ring buffer dropped {self.dropped} "
                         f"oldest events; tallies cover the tail of the run")
        return "\n".join(lines)

    def _format_pages(self) -> str:
        rows = []
        for page, ps in self.hot_pages():
            rows.append((f"page {page}",
                         [ps.read_faults, ps.write_faults, ps.fetches,
                          ps.diff_bytes, ps.shootdowns, ps.notices,
                          ps.service_us]))
        omitted = len(self.pages) - len(rows)
        title = "Hot pages (by fault-service time)"
        if omitted > 0:
            title += f" — top {len(rows)} of {len(self.pages)}"
        return format_table(title,
                            ["rd flt", "wr flt", "xfers", "diff B",
                             "shoot", "notices", "svc us"],
                            rows, col_width=9, label_width=12)

    def _format_locks(self) -> str:
        rows = []
        for name, ls in self.lock_table():
            rows.append((name,
                         [ls.acquires, ls.hold_us, ls.wait_us,
                          ls.max_wait_us, ls.transfers, ls.transfer_us]))
        return format_table("Synchronization objects (hold vs. wait)",
                            ["acquires", "hold us", "wait us", "max wait",
                             "handoffs", "xfer us"],
                            rows, col_width=10, label_width=14)

    def _format_barriers(self) -> str:
        rows = []
        for episode, es in self.barrier_table():
            mean_wait = sum(es.waits) / len(es.waits) if es.waits else 0.0
            rows.append((f"episode {episode}",
                         [len(es.arrivals), es.spread_us, mean_wait,
                          max(es.waits) if es.waits else 0.0]))
        omitted = len(self.episodes) - len(rows)
        title = "Barrier episodes (by arrival imbalance)"
        if omitted > 0:
            title += f" — top {len(rows)} of {len(self.episodes)}"
        return format_table(title,
                            ["procs", "spread us", "mean wait", "max wait"],
                            rows, col_width=10, label_width=14)

    def _format_mc(self) -> str:
        timeline = self.mc_timeline()
        bins = self.num_bins
        width = self.exec_time_us / bins if self.exec_time_us else 0.0
        cols = [f"{i * width / 1e3:.0f}ms" for i in range(bins)]
        rows = [(category, [b // 1024 for b in by_bin])
                for category, by_bin in timeline.items()]
        return format_table("Memory Channel traffic timeline (KB per slice)",
                            cols, rows, col_width=7, label_width=14)

    # --- machine-readable ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "meta": self.meta,
            "exec_time_us": self.exec_time_us,
            "kind_counts": self.kind_counts,
            "dropped_events": self.dropped,
            "trace_dropped": self.dropped,
            "hot_pages": [
                {"page": page, "read_faults": ps.read_faults,
                 "write_faults": ps.write_faults, "fetches": ps.fetches,
                 "diff_bytes": ps.diff_bytes, "shootdowns": ps.shootdowns,
                 "notices": ps.notices, "service_us": ps.service_us}
                for page, ps in self.hot_pages()],
            "locks": [
                {"name": name, "acquires": ls.acquires,
                 "hold_us": ls.hold_us, "wait_us": ls.wait_us,
                 "max_wait_us": ls.max_wait_us, "transfers": ls.transfers,
                 "transfer_us": ls.transfer_us}
                for name, ls in self.lock_table()],
            "barriers": [
                {"episode": episode, "procs": len(es.arrivals),
                 "spread_us": es.spread_us,
                 "max_wait_us": max(es.waits) if es.waits else 0.0}
                for episode, es in self.barrier_table()],
            "mc_timeline_bytes": self.mc_timeline(),
        }

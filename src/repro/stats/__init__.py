"""Statistics: Table-3 counters, Figure-6 time breakdowns, reporting."""

from .counters import COUNTER_NAMES, ProcStats, RunStats

__all__ = ["ProcStats", "RunStats", "COUNTER_NAMES"]

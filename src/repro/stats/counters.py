"""Statistics gathered during a simulation run.

The counter names mirror the rows of Table 3: synchronization operations,
faults, page transfers, directory updates, write notices, exclusive-mode
transitions, twin maintenance, incoming diffs, flush-updates, and
shootdowns. Time is accounted into the Figure-6 buckets (User, Protocol,
Polling, Comm & Wait, Write Doubling).

Per-processor stats aggregate into run-level stats; the experiment
harness formats them into the paper's tables.
"""

from __future__ import annotations

import difflib
from collections import Counter
from dataclasses import dataclass, field

from ..errors import UnknownCounterError
from ..sim.process import TIME_BUCKETS

#: Canonical counter names (Table 3 rows plus runtime bookkeeping).
#: This tuple is *closed*: incrementing or reading any other name raises
#: :class:`~repro.errors.UnknownCounterError` — a typo'd counter would
#: otherwise accumulate silently and never be seen again.
COUNTER_NAMES = (
    "lock_acquires",        # Lock/Flag Acquires
    "flag_acquires",        # subset of the above, kept separately too
    "barriers",             # Barriers (episodes)
    "barriers_crossed",     # per-processor barrier crossings
    "barrier_combine_hops",  # tree-barrier combine writes (barrier="tree")
    "read_faults",          # Read Faults
    "write_faults",         # Write Faults
    "page_transfers",       # Page Transfers
    "directory_updates",    # Directory Updates
    "write_notices",        # Write Notices
    "excl_transitions",     # Exclusive-Mode Transitions (in + out)
    "twin_creations",       # Twin Creations
    "incoming_diffs",       # Incoming Diffs (2L)
    "flush_updates",        # Flush-Updates (2L)
    "shootdowns",           # Shootdowns (2LS)
    "doubled_words",        # in-line doubled writes (1L)
    "home_relocations",     # first-touch home migrations
    "requests_served",      # explicit requests handled via polling
    # --- correctness checking (repro.check, opt-in) -------------------
    "check_events",         # shared-memory accesses traced
    "check_vc_merges",      # vector-clock join operations
    "check_races",          # data races detected
    # --- fault injection & recovery (repro.memchannel.faults, opt-in) -
    "request_naks",         # explicit requests NAK'd by a busy server
    "request_retries",      # request reissues (NAK'd or unanswered)
    "pending_waits",        # waits on a transient (pending) dir entry
    "notice_stalls",        # acquires that waited out in-flight notices
    "notice_resyncs",       # conservative resyncs after a notice gap
)

_KNOWN_COUNTERS = frozenset(COUNTER_NAMES)


def _require_known(counter: str) -> None:
    if counter not in _KNOWN_COUNTERS:
        close = difflib.get_close_matches(counter, COUNTER_NAMES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise UnknownCounterError(
            f"unknown stats counter {counter!r}{hint}; canonical names "
            f"are listed in repro.stats.COUNTER_NAMES (add new counters "
            f"there first)")


@dataclass
class ProcStats:
    """Time buckets and event counters for one simulated processor."""

    buckets: dict[str, float] = field(
        default_factory=lambda: {b: 0.0 for b in TIME_BUCKETS})
    counters: Counter = field(default_factory=Counter)

    def charge(self, us: float, bucket: str) -> None:
        self.buckets[bucket] += us

    def bump(self, counter: str, n: int = 1) -> None:
        _require_known(counter)
        self.counters[counter] += n

    @property
    def total_time(self) -> float:
        return sum(self.buckets.values())

    def merged_into(self, other: "ProcStats") -> None:
        for bucket, us in self.buckets.items():
            other.buckets[bucket] = other.buckets.get(bucket, 0.0) + us
        other.counters.update(self.counters)


@dataclass
class RunStats:
    """Aggregated statistics for one parallel execution.

    ``exec_time_us`` is the wall-clock of the slowest processor;
    ``aggregate`` sums counters and buckets over all processors
    (Table 3 aggregates over all 32 processors).
    """

    exec_time_us: float = 0.0
    aggregate: ProcStats = field(default_factory=ProcStats)
    per_proc: list[ProcStats] = field(default_factory=list)
    mc_traffic_bytes: dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(cls, proc_stats: list[ProcStats], exec_time_us: float,
                mc_traffic: dict[str, int]) -> "RunStats":
        run = cls(exec_time_us=exec_time_us, per_proc=list(proc_stats),
                  mc_traffic_bytes=dict(mc_traffic))
        for ps in proc_stats:
            ps.merged_into(run.aggregate)
        return run

    # --- Table 3 convenience accessors ------------------------------------

    def counter(self, name: str) -> int:
        _require_known(name)
        return int(self.aggregate.counters.get(name, 0))

    @property
    def data_mbytes(self) -> float:
        return sum(self.mc_traffic_bytes.values()) / 1e6

    @property
    def exec_time_s(self) -> float:
        return self.exec_time_us / 1e6

    def breakdown_fractions(self) -> dict[str, float]:
        """Per-bucket fraction of aggregated processor time (Figure 6)."""
        total = self.aggregate.total_time
        if total <= 0:
            return {b: 0.0 for b in TIME_BUCKETS}
        return {b: self.aggregate.buckets[b] / total for b in TIME_BUCKETS}

    def table3_row(self) -> dict[str, float]:
        """All Table 3 fields for this run."""
        return {
            "exec_time_s": self.exec_time_s,
            "lock_flag_acquires": self.counter("lock_acquires"),
            "barriers": self.counter("barriers"),
            "read_faults": self.counter("read_faults"),
            "write_faults": self.counter("write_faults"),
            "page_transfers": self.counter("page_transfers"),
            "directory_updates": self.counter("directory_updates"),
            "write_notices": self.counter("write_notices"),
            "excl_transitions": self.counter("excl_transitions"),
            "data_mbytes": self.data_mbytes,
            "twin_creations": self.counter("twin_creations"),
            "incoming_diffs": self.counter("incoming_diffs"),
            "flush_updates": self.counter("flush_updates"),
            "shootdowns": self.counter("shootdowns"),
        }

"""Plain-text table formatting for the experiment harness.

The experiments print tables shaped like the paper's: one column per
protocol or placement, one row per statistic or application. Everything
is monospace-aligned text so the harness output can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(title: str, col_names: Sequence[str],
                 rows: Iterable[tuple[str, Sequence[Any]]],
                 col_width: int = 10, label_width: int = 28) -> str:
    """Render a labeled table.

    ``rows`` yields (label, values) with one value per column. Numbers
    are rendered compactly; None renders as a dash.
    """
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(
        f"{name:>{col_width}}" for name in col_names)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = "".join(f"{_fmt(v):>{col_width}}" for v in values)
        lines.append(f"{label:<{label_width}}{cells}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}".replace(",", " ") if abs(value) >= 100000 \
            else str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}".replace(",", " ")
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def kilo(count: int) -> float:
    """Counts in thousands, as Table 3 reports them."""
    return count / 1000.0


def pct_change(new: float, base: float) -> float:
    """Percentage improvement of ``new`` over ``base`` (positive = faster),
    computed on execution times."""
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base

"""The parallel program runner: wires an application to a cluster,
protocol, and synchronization objects, runs it, and collects statistics.

This is the package's main entry point for running workloads::

    from repro import MachineConfig, run_app
    from repro.apps import SOR

    result = run_app(SOR(), SOR().default_params(),
                     MachineConfig(nodes=8, procs_per_node=4),
                     protocol="2L")
    print(result.stats.exec_time_s, result.stats.table3_row())
"""

from __future__ import annotations

from dataclasses import dataclass, replace
import numpy as np

from ..check import attach_checker
from ..cluster.machine import Cluster
from ..config import MachineConfig
from ..errors import ConfigError
from ..protocol import make_protocol
from ..stats.counters import RunStats
from ..sync import Barrier, FlagSet, MCLock
from ..metrics import MetricsCollector, attach_metrics
from ..trace import Tracer, attach_tracer
from .api import (SharedSegment, checking_enabled, fastpath_enabled,
                  lowering_enabled, metrics_enabled, tracing_enabled)
from .env import WorkerEnv
from .sequential import run_sequential
from ..sim.process import ProcessGroup


def _sized_config(app, params: dict, config: MachineConfig) -> MachineConfig:
    """Shrink the shared segment to what the application actually uses,
    so directory and frame structures stay proportional to the data set."""
    probe = replace(config, shared_bytes=1 << 30)
    seg = SharedSegment(probe)
    app.declare(seg, params)
    pages = max(1, seg.pages_used())
    return replace(config, shared_bytes=pages * config.page_bytes)


class ParallelRuntime:
    """One configured parallel execution (cluster + protocol + app)."""

    def __init__(self, app, params: dict, config: MachineConfig,
                 protocol: str = "2L", *, lock_free: bool = True,
                 home_opt: bool = False) -> None:
        self.app = app
        self.params = dict(params)
        self.config = _sized_config(app, params, config)
        self.cluster = Cluster(self.config)
        self.protocol = make_protocol(protocol, self.cluster,
                                      lock_free=lock_free, home_opt=home_opt)
        if getattr(app, "write_double_us", None) is not None and \
                hasattr(self.protocol, "word_double_us"):
            self.protocol.word_double_us = app.write_double_us
        #: Correctness checker (:class:`repro.check.CheckContext`), when
        #: enabled via ``config.checking`` or ``runtime.api.checking()``.
        self.checker = None
        if checking_enabled(self.config):
            self.checker = attach_checker(self.cluster, self.protocol)
        #: Event tracer (:class:`repro.trace.Tracer`), when enabled via
        #: ``config.tracing`` or ``runtime.api.tracing()``.
        self.trace: Tracer | None = None
        if tracing_enabled(self.config):
            self.trace = attach_tracer(self.cluster, self.protocol)
        #: Metrics collector (:class:`repro.metrics.MetricsCollector`),
        #: when enabled via ``config.metrics`` or ``runtime.api.metering()``.
        self.metrics: MetricsCollector | None = None
        if metrics_enabled(self.config):
            self.metrics = attach_metrics(self.cluster, self.protocol,
                                          tracer=self.trace)
        #: Inline page-access cache switch, consulted by WorkerEnv. The
        #: checker, tracer, and metrics collector are all attached above,
        #: *before* run() builds the worker environments, so each
        #: WorkerEnv sees the final observer configuration when it
        #: decides on the fast path.
        self.fastpath = fastpath_enabled(self.config)
        #: Kernel-lowering switch, consulted by WorkerEnv.run_region().
        #: Observers force per-step interpretation (they hook the
        #: per-access protocol paths a batched region would skip), as
        #: does fault injection (a lowered batch could not be preempted
        #: by an injected event at the right instant). Like ``fastpath``
        #: this is decided after every observer is attached.
        self.lowering = (lowering_enabled(self.config) and self.fastpath
                         and self.checker is None and self.trace is None
                         and self.metrics is None
                         and self.config.faults is None)
        self.segment = SharedSegment(self.config)
        app.declare(self.segment, params)
        self.barrier = Barrier(self.cluster, self.protocol)
        self._locks: dict[int, MCLock] = {}
        self._flag_sets: dict[str, FlagSet] = {}
        for name, count in app.flags_needed(params).items():
            self._flag_sets[name] = FlagSet(self.cluster, self.protocol,
                                            name, count)

    # --- synchronization registries -------------------------------------------

    def lock(self, lock_id: int) -> MCLock:
        lock = self._locks.get(lock_id)
        if lock is None:
            lock = MCLock(self.cluster, self.protocol, lock_id)
            self._locks[lock_id] = lock
        return lock

    def flags(self, name: str) -> FlagSet:
        try:
            return self._flag_sets[name]
        except KeyError:
            raise ConfigError(
                f"flag set {name!r} not declared by "
                f"{self.app.name}.flags_needed()") from None

    # --- execution ----------------------------------------------------------------

    def run(self) -> "RunResult":
        group = ProcessGroup(self.cluster.sim)
        for proc in self.cluster.processors:
            env = WorkerEnv(self, proc)
            group.spawn(proc, self.app.worker(env, self.params),
                        name=f"{self.app.name}:p{proc.global_id}")
        group.run()
        if self.checker is not None:
            # End-of-run oracle sweep; raises DataRaceError if the app
            # raced or CoherenceViolation if the protocol served bad data.
            self.checker.finalize()
        exec_time = self.cluster.max_clock()
        stats = RunStats.collect([p.stats for p in self.cluster.processors],
                                 exec_time, self.cluster.mc.traffic)
        # The Table 3 "Barriers" row counts barrier episodes, not crossings.
        stats.aggregate.counters["barriers"] = self.barrier.episodes
        if self.trace is not None:
            self.trace.finalize(
                app=self.app.name, protocol=self.protocol.name,
                exec_time_us=exec_time, nodes=self.config.nodes,
                procs_per_node=self.config.procs_per_node)
        if self.metrics is not None:
            self.metrics.finalize(
                exec_time, app=self.app.name, protocol=self.protocol.name,
                nodes=self.config.nodes,
                procs_per_node=self.config.procs_per_node)
        return RunResult(self, stats, trace=self.trace, metrics=self.metrics)

    # --- result extraction ------------------------------------------------------------

    def read_word(self, word: int) -> float:
        page = word >> self.config.page_shift - 3
        offset = word & self.config.words_per_page - 1
        return self._authoritative_frame(page)[offset]

    def read_array(self, name: str) -> np.ndarray:
        """Gather the authoritative final contents of a shared array."""
        arr = self.segment.array(name)
        wpp = self.config.words_per_page
        out = np.empty(arr.length, dtype=np.float64)
        pos = 0
        w = arr.base
        end = arr.base + arr.length
        while w < end:
            page = w // wpp
            off = w % wpp
            take = min(wpp - off, end - w)
            out[pos:pos + take] = self._authoritative_frame(page)[
                off:off + take]
            pos += take
            w += take
        return out

    def _authoritative_frame(self, page: int) -> np.ndarray:
        """The freshest copy of a page: the exclusive holder's frame if one
        exists, otherwise the home master."""
        entry = self.protocol.directory.entry(page)
        holder = entry.exclusive_holder()
        if holder is not None:
            return self.protocol.frames.frame(holder[0], page)
        return self.protocol.master(page)


@dataclass
class RunResult:
    """Outcome of one parallel execution."""

    runtime: ParallelRuntime
    stats: RunStats
    #: The event trace of this run (None unless tracing was enabled).
    trace: Tracer | None = None
    #: Sampled metric series (None unless metrics were enabled).
    metrics: MetricsCollector | None = None

    def array(self, name: str) -> np.ndarray:
        return self.runtime.read_array(name)

    @property
    def exec_time_us(self) -> float:
        return self.stats.exec_time_us


def run_app(app, params: dict, config: MachineConfig,
            protocol: str = "2L", *, lock_free: bool = True,
            home_opt: bool = False) -> RunResult:
    """Build and run one parallel execution; the main convenience API."""
    runtime = ParallelRuntime(app, params, config, protocol,
                              lock_free=lock_free, home_opt=home_opt)
    return runtime.run()


@dataclass
class ComparisonResult:
    """A parallel run checked against (and timed against) sequential."""

    run: RunResult
    seq_time_us: float
    speedup: float
    verified: bool
    max_error: float


def run_and_verify(app, params: dict, config: MachineConfig,
                   protocol: str = "2L", *, lock_free: bool = True,
                   home_opt: bool = False,
                   rtol: float = 1e-8, atol: float = 1e-8) -> ComparisonResult:
    """Run sequentially and in parallel; verify results match; compute speedup.

    The parallel run's final shared data must equal the sequential run's
    (up to floating-point reassociation tolerated by ``rtol/atol``) — the
    protocols genuinely move the data, so this is the end-to-end coherence
    correctness check.
    """
    seq_env, seq_time = run_sequential(app, params, config)
    result = run_app(app, params, config, protocol,
                     lock_free=lock_free, home_opt=home_opt)
    verified = True
    max_error = 0.0
    for name in app.result_arrays(params):
        expected = seq_env.mem[seq_env.arr(name).base:
                               seq_env.arr(name).base
                               + seq_env.arr(name).length]
        actual = result.array(name)
        if not app.results_equal(name, expected, actual, rtol, atol):
            verified = False
        err = app.result_error(name, expected, actual)
        max_error = max(max_error, err)
    speedup = seq_time / result.exec_time_us if result.exec_time_us else 0.0
    return ComparisonResult(run=result, seq_time_us=seq_time,
                            speedup=speedup, verified=verified,
                            max_error=max_error)

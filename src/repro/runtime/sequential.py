"""Sequential execution: the uninstrumented single-processor baseline.

Runs the same application worker (rank 0 of 1) against plain numpy
arrays, with no protocol library linked in — exactly how the paper
measured the Table 2 sequential times. Compute blocks accumulate CPU time
plus uncontended memory-bus service; there is no polling overhead and no
fault cost. Speedups in Figure 7 are parallel time divided by this time.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import SimulationError
from ..sim.process import Compute
from .api import SharedArray, SharedSegment


class SequentialEnv:
    """Drop-in replacement for WorkerEnv running directly on numpy."""

    def __init__(self, config: MachineConfig, segment: SharedSegment) -> None:
        self.config = config
        self.segment = segment
        self.rank = 0
        self.nprocs = 1
        self.node_rank = 0
        self.local_rank = 0
        self.mem = np.zeros(segment.total_words, dtype=np.float64)
        self.time_us = 0.0
        self._flags: dict[str, dict[int, int]] = {}
        self._cscale = 1.0  # set from params by run_sequential

    @property
    def words_per_page(self) -> int:
        return self.config.words_per_page

    def arr(self, name: str) -> SharedArray:
        return self.segment.array(name)

    # --- data ------------------------------------------------------------------

    def get(self, arr: SharedArray, i: int) -> float:
        return self.mem[arr.base + i]

    def set(self, arr: SharedArray, i: int, value: float) -> None:
        self.mem[arr.base + i] = value

    def get_block(self, arr: SharedArray, lo: int, hi: int) -> np.ndarray:
        return self.mem[arr.base + lo:arr.base + hi].copy()

    def set_block(self, arr: SharedArray, lo: int,
                  values: np.ndarray) -> None:
        self.mem[arr.base + lo:arr.base + lo + len(values)] = values

    # --- time ------------------------------------------------------------------

    def compute(self, cpu_us: float, mem_bytes: float = 0.0) -> Compute:
        return Compute(cpu_us * self._cscale, mem_bytes * self._cscale)

    def run_region(self, kernel):
        """Generator: regions always run their per-step interpreter here
        (lowering is a parallel-runtime concern; the interp body is the
        original loop, so sequential semantics are unchanged)."""
        if kernel.n <= 0:
            return iter(())
        return kernel.interp(self)

    # --- synchronization: no-ops for one processor --------------------------------

    def barrier(self):
        return iter(())

    def acquire(self, lock_id: int):
        return iter(())

    def release(self, lock_id: int) -> None:
        pass

    def flag_set(self, name: str, index: int, value: int = 1) -> None:
        self._flags.setdefault(name, {})[index] = value

    def flag_wait(self, name: str, index: int, value: int = 1):
        have = self._flags.get(name, {}).get(index, 0)
        if have < value:
            raise SimulationError(
                f"sequential run would deadlock waiting for flag "
                f"{name}[{index}] >= {value}")
        return iter(())

    def flag_peek(self, name: str, index: int) -> int:
        return self._flags.get(name, {}).get(index, 0)

    def end_init(self) -> None:
        pass

    @property
    def parallel(self) -> bool:
        return False


def run_sequential(app, params: dict,
                   config: MachineConfig) -> tuple[SequentialEnv, float]:
    """Run ``app`` sequentially; returns (env, elapsed simulated us)."""
    segment = SharedSegment(config)
    app.declare(segment, params)
    env = SequentialEnv(config, segment)
    env._cscale = float(params.get("_compute_scale", 1.0))
    bus_bw = config.costs.node_bus_bandwidth
    for instr in app.worker(env, params):
        if isinstance(instr, Compute):
            env.time_us += instr.cpu_us + instr.mem_bytes / bus_bw
        else:
            raise SimulationError(
                f"sequential worker yielded non-compute {instr!r}; "
                f"synchronization must go through env methods")
    return env, env.time_us

"""The shared-memory segment and array handles.

Applications allocate named :class:`SharedArray` objects from a
:class:`SharedSegment`. Arrays are laid out in a single word-addressed
shared address space split into pages; by default each array starts on a
fresh page (false sharing between *different* arrays is an accident of
layout, not an algorithm property, and the paper's applications were laid
out the same way). Within an array, page boundaries fall where they fall
— that is where the protocols' multiple-writer false-sharing handling
earns its keep.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from ..config import MachineConfig, env_flag
from ..errors import ConfigError

#: Nesting depth of active :func:`checking` context managers. When
#: positive, every :class:`~repro.runtime.ParallelRuntime` built runs
#: under the correctness checker regardless of its config flag.
_checking_depth = 0


@contextlib.contextmanager
def checking():
    """Force correctness checking for all runtimes built in this scope.

    The scoped equivalent of ``MachineConfig(checking=True)``: any app,
    example, or test that builds a :class:`~repro.runtime.ParallelRuntime`
    inside the ``with`` block runs under the happens-before race detector
    and the coherence oracle (:mod:`repro.check`) without threading a
    config flag through::

        with checking():
            result = run_app(app, params, config, protocol="2L")

    Nesting is allowed; checking stays on until the outermost block exits.
    """
    global _checking_depth
    _checking_depth += 1
    try:
        yield
    finally:
        _checking_depth -= 1


def checking_enabled(config: MachineConfig) -> bool:
    """Should a runtime built with ``config`` attach the checker?"""
    return bool(config.checking or _checking_depth)


#: Nesting depth of active :func:`tracing` context managers. When
#: positive, every :class:`~repro.runtime.ParallelRuntime` built attaches
#: an event tracer regardless of its config flag.
_tracing_depth = 0


@contextlib.contextmanager
def tracing():
    """Force event tracing for all runtimes built in this scope.

    The scoped equivalent of ``MachineConfig(tracing=True)``: any app,
    example, or test that builds a :class:`~repro.runtime.ParallelRuntime`
    inside the ``with`` block records protocol events into a
    :class:`~repro.trace.Tracer`, available afterwards as
    ``result.trace``::

        with tracing():
            result = run_app(app, params, config, protocol="2L")
        write_chrome_trace(result.trace, "trace.json")

    Nesting is allowed; tracing stays on until the outermost block exits.
    """
    global _tracing_depth
    _tracing_depth += 1
    try:
        yield
    finally:
        _tracing_depth -= 1


def tracing_enabled(config: MachineConfig) -> bool:
    """Should a runtime built with ``config`` attach an event tracer?"""
    return bool(config.tracing or _tracing_depth)


#: Nesting depth of active :func:`metering` context managers. When
#: positive, every :class:`~repro.runtime.ParallelRuntime` built attaches
#: a metrics collector regardless of its config flag.
_metering_depth = 0


@contextlib.contextmanager
def metering():
    """Force metrics collection for all runtimes built in this scope.

    The scoped equivalent of ``MachineConfig(metrics=True)``: any app,
    example, or test that builds a :class:`~repro.runtime.ParallelRuntime`
    inside the ``with`` block samples time-series metrics into a
    :class:`~repro.metrics.MetricsCollector`, available afterwards as
    ``result.metrics``::

        with metering():
            result = run_app(app, params, config, protocol="2L")
        print(result.metrics.series["mc.util"])

    (Named ``metering`` rather than ``metrics`` so the context manager
    does not shadow the :mod:`repro.metrics` package.) Nesting is
    allowed; collection stays on until the outermost block exits.
    """
    global _metering_depth
    _metering_depth += 1
    try:
        yield
    finally:
        _metering_depth -= 1


def metrics_enabled(config: MachineConfig) -> bool:
    """Should a runtime built with ``config`` attach a metrics collector?"""
    return bool(config.metrics or _metering_depth)


def fastpath_enabled(config: MachineConfig) -> bool:
    """Should worker environments use the inline page-access cache?

    ``MachineConfig.fastpath`` (default True) opts in; the
    ``CASHMERE_NO_FASTPATH`` environment variable force-disables it for a
    whole process without touching configs — the determinism regression
    tests diff fast-path runs against runs forced down the slow path this
    way. The fast path is also suppressed per-runtime whenever the
    correctness checker is attached (it needs per-word access events);
    that decision happens in :class:`~repro.runtime.env.WorkerEnv`.
    """
    if env_flag("CASHMERE_NO_FASTPATH"):
        return False
    return bool(config.fastpath)


def lowering_enabled(config: MachineConfig) -> bool:
    """Should worker environments execute lowered kernel regions?

    ``MachineConfig.lowering`` (default True) opts in; the
    ``CASHMERE_NO_LOWERING`` environment variable force-disables it for a
    whole process without touching configs — the lowering regression
    tests diff lowered runs against runs forced through the per-step
    interpreter this way. Lowering is additionally suppressed
    per-runtime whenever an observer (checker/tracer/metrics) or fault
    injection is active, and per-environment for write-through
    protocols; those decisions happen in
    :class:`~repro.runtime.ParallelRuntime` and
    :class:`~repro.runtime.env.WorkerEnv`.
    """
    if env_flag("CASHMERE_NO_LOWERING"):
        return False
    return bool(config.lowering)


@dataclass(frozen=True)
class SharedArray:
    """A named, contiguous range of shared words."""

    name: str
    base: int      # first word index in the shared segment
    length: int    # number of 64-bit words

    def index(self, i: int) -> int:
        return self.base + i

    def idx2(self, row: int, col: int, cols: int) -> int:
        """Word index of a row-major 2-D element."""
        return self.base + row * cols + col


class SharedSegment:
    """A bump allocator over the shared address space."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.total_words = config.shared_bytes // 8
        self._next = 0
        self.arrays: dict[str, SharedArray] = {}

    def alloc(self, name: str, length: int,
              page_aligned: bool = True) -> SharedArray:
        """Allocate ``length`` words, optionally starting on a page boundary."""
        if name in self.arrays:
            raise ConfigError(f"shared array {name!r} already allocated")
        if length <= 0:
            raise ConfigError(f"array {name!r} must have positive length")
        base = self._next
        wpp = self.config.words_per_page
        if page_aligned and base % wpp:
            base += wpp - base % wpp
        if base + length > self.total_words:
            raise ConfigError(
                f"shared segment exhausted allocating {name!r}: need "
                f"{length} words at {base}, have {self.total_words} total; "
                f"increase MachineConfig.shared_bytes")
        arr = SharedArray(name, base, length)
        self.arrays[name] = arr
        self._next = base + length
        return arr

    def array(self, name: str) -> SharedArray:
        return self.arrays[name]

    @property
    def words_used(self) -> int:
        return self._next

    def pages_used(self) -> int:
        wpp = self.config.words_per_page
        return (self._next + wpp - 1) // wpp

"""The worker environment: what application code sees.

An application worker is a generator taking a single ``env`` argument.
The same worker code runs in three settings:

* **parallel** — :class:`WorkerEnv`, backed by a coherence protocol on
  the simulated cluster (this module);
* **sequential** — :class:`~repro.runtime.sequential.SequentialEnv`,
  plain numpy arrays and a cost accumulator (the paper's uninstrumented
  sequential runs of Table 2).

Data access methods (``get``/``set``/``get_block``/``set_block``) are
plain calls; anything that can block — barriers, lock acquires, flag
waits — is a sub-generator the worker must delegate to with
``yield from``; compute blocks are yielded instructions:

    value = env.get(arr, i)
    env.set(arr, i, value + 1.0)
    yield env.compute(cpu_us=5.0, mem_bytes=256)
    yield from env.barrier()
    yield from env.acquire(0)
    ...critical section...
    env.release(0)
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import Processor
from ..lower.exec import LoweredRun
from ..sim.process import Compute
from .api import SharedArray


class WorkerEnv:
    """Per-processor handle used by application code (parallel runs)."""

    def __init__(self, runtime, proc: Processor) -> None:
        self._rt = runtime
        self.proc = proc
        self.rank = proc.global_id
        self.nprocs = runtime.cluster.num_procs
        self._protocol = runtime.protocol
        self._shift = runtime.config.page_shift - 3  # words per page shift
        self._mask = runtime.config.words_per_page - 1
        #: Uniform scale on all compute charges (the "_compute_scale"
        #: parameter): used for computation-to-communication sensitivity
        #: studies and by the calibration tooling.
        self._cscale = float(runtime.params.get("_compute_scale", 1.0))

        # --- inline page-access cache (software TLB) ---------------------
        # Cached (page -> frame) entries for recently read and recently
        # written pages, validated against the owner's generation
        # counters: every permission *tightening* and frame map/unmap
        # bumps them (loosening cannot invalidate a mapping and stays
        # silent), and a stale cache is flushed wholesale before the
        # access retries through full protocol dispatch. Warm accesses in
        # the dispatch path charge nothing and mutate no protocol state,
        # so skipping it is byte-identical — the paper's in-line check,
        # minus the check.
        proto = runtime.protocol
        st = proto.proc_state(proc)
        #: Protocol-side per-processor state (page table row + frames);
        #: the lowered-region executor validates page permissions and
        #: replays faults against it (:mod:`repro.lower`).
        self._pstate = st
        self._frames = st.frames
        #: Read mappings validate against the owner's read generation,
        #: write mappings against the write generation (which also bumps
        #: on WRITE -> READ downgrades, e.g. at barrier-arrival flushes).
        self._gen = st.gen
        self._wgencnt = st.wgen
        fast = getattr(runtime, "fastpath", True) and proto.tracer is None
        #: Read cache: off when the correctness checker is attached (it
        #: must observe every per-word access).
        self._fast_read = fast
        #: Write cache: additionally off under write-through (1L), whose
        #: ``store`` must keep doubling every write to the master copy.
        self._fast_write = fast and not getattr(proto, "write_through",
                                                False)
        #: Kernel lowering (:mod:`repro.lower`): the runtime switch
        #: already folds in the observers and fault injection; the
        #: fast-path requirements fold in the tracer and write-through
        #: protocols (1L must keep doubling every store to the master,
        #: so its writes cannot be batched into direct frame stores).
        self._lowering = (getattr(runtime, "lowering", False)
                          and self._fast_read and self._fast_write)
        #: Hoisted adaptive-policy state (per env, per kernel class):
        #: region entries remaining before the next interpreted schedule
        #: re-probes the batched executor. Populated only for kernel
        #: classes currently in the interpreting (degenerate-schedule)
        #: regime — the lowered steady state never touches it.
        self._region_probe: dict[type, int] = {}
        #: Cached region instructions, one per (env, kernel) pair: the
        #: single-element tuple ``run_region`` hands back as an
        #: iterator. Workers construct each kernel once and enter its
        #: region every iteration, so caching the LoweredRun (and its
        #: continuation bound method) turns per-entry dispatch into a
        #: dict hit plus a ``reset()``.
        self._region_runs: dict = {}
        #: Generation snapshots, held in one-element lists so the
        #: closure-compiled warm paths below and the cold-path refill
        #: helpers share one mutable cell.
        self._rsnap = [-1]
        self._rcache: dict[int, np.ndarray] = {}
        self._wsnap = [-1]
        #: The write cache holds *memoryviews* of the frames: a
        #: memoryview slice/scalar store is several times cheaper than
        #: the equivalent ndarray ``__setitem__`` (no ufunc dispatch),
        #: and writes never need ndarray semantics on the destination.
        self._wcache: dict[int, memoryview] = {}
        #: TLB hit/miss tally shared with the metrics collector — a
        #: two-element ``[hits, misses]`` list bumped by the counting
        #: closure variants below. None (and no counting code exists)
        #: unless a collector is attached.
        mcoll = getattr(runtime, "metrics", None)
        self._tlb = None if mcoll is None else mcoll.tlb
        self._build_fastpaths()

    def _build_fastpaths(self) -> None:
        """Compile the warm access paths as closures.

        The warm paths run for almost every access of a well-behaved
        application; binding every invariant (page geometry, caches,
        generation counters) into closure cells replaces a chain of
        ``self`` attribute loads per call with fast local loads. Each
        closure handles exactly the warm case and falls back to the
        general method on the instance class for everything else, so
        behaviour is identical to the uncached path.
        """
        shift = self._shift
        mask = self._mask
        rcache = self._rcache
        wcache = self._wcache
        rgen = self._gen
        wgen = self._wgencnt
        rsnap = self._rsnap
        wsnap = self._wsnap
        cold_get = self._get_cold
        cold_set = self._set_cold
        slow_get_block = self.get_block
        slow_set_block = self.set_block

        def get(arr: SharedArray, i: int) -> float:
            w = arr.base + i
            page = w >> shift
            if rsnap[0] == rgen.value:
                frame = rcache.get(page)
                if frame is not None:
                    return frame[w & mask]
            return cold_get(page, w & mask)

        def set_(arr: SharedArray, i: int, value: float) -> None:
            w = arr.base + i
            page = w >> shift
            if wsnap[0] == wgen.value:
                mv = wcache.get(page)
                if mv is not None:
                    mv[w & mask] = value
                    return
            cold_set(page, w & mask, value)

        def get_block(arr: SharedArray, lo: int, hi: int) -> np.ndarray:
            base = arr.base
            w0 = base + lo
            w1 = base + hi
            if w0 < w1 and rsnap[0] == rgen.value:
                page = w0 >> shift
                if (w1 - 1) >> shift == page:
                    frame = rcache.get(page)
                    if frame is not None:
                        off = w0 & mask
                        return frame[off:off + (w1 - w0)].copy()
            return slow_get_block(arr, lo, hi)

        def set_block(arr: SharedArray, lo: int,
                      values: np.ndarray) -> None:
            w = arr.base + lo
            end = w + len(values)
            if w < end and wsnap[0] == wgen.value:
                page = w >> shift
                if (end - 1) >> shift == page:
                    mv = wcache.get(page)
                    if mv is not None:
                        off = w & mask
                        try:
                            mv[off:off + (end - w)] = values
                        except (ValueError, TypeError):
                            # Non-float64 source: cast like ndarray
                            # assignment would, then retry.
                            mv[off:off + (end - w)] = np.ascontiguousarray(
                                values, dtype=np.float64)
                        return
            slow_set_block(arr, lo, values)

        if self._tlb is not None:
            # Metrics attached: recompile the warm paths with inline
            # hit/miss tallying into the collector's shared cell. A
            # separate compilation (rather than a branch in the common
            # closures) keeps the metrics-off path free of any counting
            # code — same discipline as the observers themselves.
            tlb = self._tlb

            def get(arr: SharedArray, i: int) -> float:  # noqa: F811
                w = arr.base + i
                page = w >> shift
                if rsnap[0] == rgen.value:
                    frame = rcache.get(page)
                    if frame is not None:
                        tlb[0] += 1
                        return frame[w & mask]
                tlb[1] += 1
                return cold_get(page, w & mask)

            def set_(arr: SharedArray, i: int,  # noqa: F811
                     value: float) -> None:
                w = arr.base + i
                page = w >> shift
                if wsnap[0] == wgen.value:
                    mv = wcache.get(page)
                    if mv is not None:
                        tlb[0] += 1
                        mv[w & mask] = value
                        return
                tlb[1] += 1
                cold_set(page, w & mask, value)

            def get_block(arr: SharedArray, lo: int,  # noqa: F811
                          hi: int) -> np.ndarray:
                base = arr.base
                w0 = base + lo
                w1 = base + hi
                if w0 < w1 and rsnap[0] == rgen.value:
                    page = w0 >> shift
                    if (w1 - 1) >> shift == page:
                        frame = rcache.get(page)
                        if frame is not None:
                            tlb[0] += 1
                            off = w0 & mask
                            return frame[off:off + (w1 - w0)].copy()
                tlb[1] += 1
                return slow_get_block(arr, lo, hi)

            def set_block(arr: SharedArray, lo: int,  # noqa: F811
                          values: np.ndarray) -> None:
                w = arr.base + lo
                end = w + len(values)
                if w < end and wsnap[0] == wgen.value:
                    page = w >> shift
                    if (end - 1) >> shift == page:
                        mv = wcache.get(page)
                        if mv is not None:
                            tlb[0] += 1
                            off = w & mask
                            try:
                                mv[off:off + (end - w)] = values
                            except (ValueError, TypeError):
                                mv[off:off + (end - w)] = \
                                    np.ascontiguousarray(values,
                                                         dtype=np.float64)
                            return
                tlb[1] += 1
                slow_set_block(arr, lo, values)

        # Shadow the class methods on the instance; the class methods stay
        # as the (identical) general fallbacks.
        self.get = get
        self.set = set_
        self.get_block = get_block
        self.set_block = set_block

    # --- identity ------------------------------------------------------------

    @property
    def node_rank(self) -> int:
        return self.proc.node.id

    @property
    def words_per_page(self) -> int:
        return self._mask + 1

    @property
    def local_rank(self) -> int:
        return self.proc.local_id

    def arr(self, name: str) -> SharedArray:
        return self._rt.segment.array(name)

    # --- scalar access ---------------------------------------------------------

    def get(self, arr: SharedArray, i: int) -> float:
        w = arr.base + i
        page = w >> self._shift
        if self._rsnap[0] == self._gen.value:
            frame = self._rcache.get(page)
            if frame is not None:
                return frame[w & self._mask]
        return self._get_cold(page, w & self._mask)

    def _get_cold(self, page: int, off: int) -> float:
        value = self._protocol.load(self.proc, page, off)
        if self._fast_read:
            gen = self._gen.value
            if self._rsnap[0] != gen:
                self._rcache.clear()
                self._rsnap[0] = gen
            frame = self._frames.get(page)
            if frame is not None:
                self._rcache[page] = frame
        return value

    def set(self, arr: SharedArray, i: int, value: float) -> None:
        w = arr.base + i
        page = w >> self._shift
        if self._wsnap[0] == self._wgencnt.value:
            mv = self._wcache.get(page)
            if mv is not None:
                mv[w & self._mask] = value
                return
        self._set_cold(page, w & self._mask, value)

    def _set_cold(self, page: int, off: int, value: float) -> None:
        self._protocol.store(self.proc, page, off, value)
        if self._fast_write:
            gen = self._wgencnt.value
            if self._wsnap[0] != gen:
                self._wcache.clear()
                self._wsnap[0] = gen
            frame = self._frames.get(page)
            if frame is not None:
                self._wcache[page] = memoryview(frame)

    # --- block access ------------------------------------------------------------

    def get_block(self, arr: SharedArray, lo: int, hi: int) -> np.ndarray:
        """Copy of words [lo, hi) of the array (page faults as needed).

        Always returns a private copy: the protocol's ``load_range``
        yields a live view of the owner's frame, and this method is the
        copying boundary that keeps application code from aliasing it.
        """
        base = arr.base
        w0, w1 = base + lo, base + hi
        shift, mask = self._shift, self._mask
        warm = self._rsnap[0] == self._gen.value
        cache = self._rcache
        if w0 < w1 and warm:
            page = w0 >> shift
            if (w1 - 1) >> shift == page:
                frame = cache.get(page)
                if frame is not None:
                    off = w0 & mask
                    return frame[off:off + (w1 - w0)].copy()
        wpp = mask + 1
        out = np.empty(hi - lo, dtype=np.float64)
        pos = 0
        w = w0
        while w < w1:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, w1 - w)
            frame = cache.get(page) if warm else None
            if frame is not None:
                out[pos:pos + take] = frame[off:off + take]
            else:
                out[pos:pos + take] = self._read_through(page, off,
                                                         off + take)
                warm = self._rsnap[0] == self._gen.value
            pos += take
            w += take
        return out

    def _read_through(self, page: int, lo: int, hi: int) -> np.ndarray:
        """Cold block read: full dispatch, then refill the read cache."""
        values = self._protocol.load_range(self.proc, page, lo, hi)
        if self._fast_read:
            gen = self._gen.value
            if self._rsnap[0] != gen:
                self._rcache.clear()
                self._rsnap[0] = gen
            frame = self._frames.get(page)
            if frame is not None:
                self._rcache[page] = frame
        return values

    def set_block(self, arr: SharedArray, lo: int,
                  values: np.ndarray) -> None:
        """Write ``values`` at word offset ``lo`` (page faults as needed)."""
        base = arr.base
        w = base + lo
        end = w + len(values)
        shift, mask = self._shift, self._mask
        warm = self._wsnap[0] == self._wgencnt.value
        cache = self._wcache
        if w < end and warm:
            page = w >> shift
            if (end - 1) >> shift == page:
                mv = cache.get(page)
                if mv is not None:
                    off = w & mask
                    self._mv_store(mv, off, end - w, values)
                    return
        wpp = mask + 1
        pos = 0
        while w < end:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, end - w)
            mv = cache.get(page) if warm else None
            if mv is not None:
                self._mv_store(mv, off, take, values[pos:pos + take])
            else:
                self._write_through(page, off, values[pos:pos + take])
                warm = self._wsnap[0] == self._wgencnt.value
            pos += take
            w += take

    @staticmethod
    def _mv_store(mv: memoryview, off: int, n: int,
                  values: np.ndarray) -> None:
        """Store into a cached frame memoryview, casting when needed."""
        try:
            mv[off:off + n] = values
        except (ValueError, TypeError):
            mv[off:off + n] = np.ascontiguousarray(values, dtype=np.float64)

    def _write_through(self, page: int, lo: int,
                       values: np.ndarray) -> None:
        """Cold block write: full dispatch, then refill the write cache."""
        self._protocol.store_range(self.proc, page, lo, values)
        if self._fast_write:
            gen = self._wgencnt.value
            if self._wsnap[0] != gen:
                self._wcache.clear()
                self._wsnap[0] = gen
            frame = self._frames.get(page)
            if frame is not None:
                self._wcache[page] = memoryview(frame)

    # --- time ---------------------------------------------------------------------

    def compute(self, cpu_us: float, mem_bytes: float = 0.0) -> Compute:
        """A block of application computation; yield the returned object."""
        return Compute(cpu_us * self._cscale, mem_bytes * self._cscale)

    # --- lowered kernel regions -----------------------------------------------------

    def run_region(self, kernel):
        """Generator: execute one lowerable kernel region (:mod:`repro.lower`).

        Delegate with ``yield from env.run_region(kernel)``. When
        lowering is off (or the region is empty) this returns the
        kernel's per-step interpreter generator — the original loop,
        inlined byte-identically through generator delegation. When
        lowering is on it yields a single batched region instruction
        that the simulation layer drives (validating page permissions
        per step, replaying faults at the exact instants the
        interpreter would have faulted, and charging per-step compute
        costs with the same arithmetic).

        A region with no steps (``kernel.n == 0``) is skipped entirely,
        in both modes — the region-level equivalent of the ``if my_work:``
        guard workers used to wrap around their loops.

        The adaptive decision (:meth:`RegionKernel.want_lowered` is the
        reference form) is hoisted out of the hot path: in the lowered
        steady state the entry check is a single class-attribute
        comparison — every batched execution refreshes the measured
        steps-per-batch ratio anyway, so no per-entry counter or probe
        bookkeeping is needed. Only the interpreting (degenerate
        lockstep-schedule) regime keeps a per-(env, kernel-class)
        countdown, re-probing the batched executor once every
        ``_adapt_probe`` region entries so a changed schedule can
        re-earn batching.
        """
        if kernel.n <= 0:
            return iter(())
        if self._lowering:
            cls = type(kernel)
            if cls._adapt_ratio >= cls._adapt_threshold:
                return self._region_instruction(kernel)
            left = self._region_probe.get(cls, 0)
            if left <= 0:
                # Periodic probe: run batched once to re-measure.
                self._region_probe[cls] = cls._adapt_probe - 1
                return self._region_instruction(kernel)
            self._region_probe[cls] = left - 1
        return kernel.interp(self)

    def _region_instruction(self, kernel):
        """One batched region instruction, as an iterator — the cached
        equivalent of ``repro.lower.exec.region_instruction``. The
        LoweredRun per (env, kernel) persists across executions; a
        tuple iterator over it is cheaper than a generator frame, and
        ``reset()`` rearms the cursor state the previous execution
        left behind. Safe because a worker is sequential: the prior
        execution of this kernel's region finished (its commit pushed
        the worker's resume) before the worker could re-enter here.
        """
        ri = self._region_runs.get(kernel)
        if ri is None:
            ri = self._region_runs[kernel] = (LoweredRun(kernel, self),)
        else:
            ri[0].reset()
        return iter(ri)

    # --- synchronization --------------------------------------------------------------

    def barrier(self):
        """Generator: global barrier (with arrival flush / departure acquire)."""
        return self._rt.barrier.wait(self.proc)

    def acquire(self, lock_id: int):
        """Generator: acquire application lock ``lock_id``."""
        return self._rt.lock(lock_id).acquire(self.proc)

    def release(self, lock_id: int) -> None:
        self._rt.lock(lock_id).release(self.proc)

    def flag_set(self, name: str, index: int, value: int = 1) -> None:
        self._rt.flags(name).set(self.proc, index, value)

    def flag_wait(self, name: str, index: int, value: int = 1):
        """Generator: wait for a flag, then acquire."""
        return self._rt.flags(name).wait(self.proc, index, value)

    def flag_peek(self, name: str, index: int) -> int:
        """Read a flag without blocking or acquiring (polling checks)."""
        return self._rt.flags(name).peek(self.proc, index)

    # --- phases --------------------------------------------------------------------------

    def end_init(self) -> None:
        """Mark the end of the initialization phase: arms first-touch home
        relocation (call on every rank; idempotent)."""
        self._protocol.end_initialization()

    @property
    def parallel(self) -> bool:
        return True

"""The worker environment: what application code sees.

An application worker is a generator taking a single ``env`` argument.
The same worker code runs in three settings:

* **parallel** — :class:`WorkerEnv`, backed by a coherence protocol on
  the simulated cluster (this module);
* **sequential** — :class:`~repro.runtime.sequential.SequentialEnv`,
  plain numpy arrays and a cost accumulator (the paper's uninstrumented
  sequential runs of Table 2).

Data access methods (``get``/``set``/``get_block``/``set_block``) are
plain calls; anything that can block — barriers, lock acquires, flag
waits — is a sub-generator the worker must delegate to with
``yield from``; compute blocks are yielded instructions:

    value = env.get(arr, i)
    env.set(arr, i, value + 1.0)
    yield env.compute(cpu_us=5.0, mem_bytes=256)
    yield from env.barrier()
    yield from env.acquire(0)
    ...critical section...
    env.release(0)
"""

from __future__ import annotations

import numpy as np

from ..cluster.machine import Processor
from ..sim.process import Compute
from .api import SharedArray


class WorkerEnv:
    """Per-processor handle used by application code (parallel runs)."""

    def __init__(self, runtime, proc: Processor) -> None:
        self._rt = runtime
        self.proc = proc
        self.rank = proc.global_id
        self.nprocs = runtime.cluster.num_procs
        self._protocol = runtime.protocol
        self._shift = runtime.config.page_shift - 3  # words per page shift
        self._mask = runtime.config.words_per_page - 1
        #: Uniform scale on all compute charges (the "_compute_scale"
        #: parameter): used for computation-to-communication sensitivity
        #: studies and by the calibration tooling.
        self._cscale = float(runtime.params.get("_compute_scale", 1.0))

    # --- identity ------------------------------------------------------------

    @property
    def node_rank(self) -> int:
        return self.proc.node.id

    @property
    def words_per_page(self) -> int:
        return self._mask + 1

    @property
    def local_rank(self) -> int:
        return self.proc.local_id

    def arr(self, name: str) -> SharedArray:
        return self._rt.segment.array(name)

    # --- scalar access ---------------------------------------------------------

    def get(self, arr: SharedArray, i: int) -> float:
        w = arr.base + i
        return self._protocol.load(self.proc, w >> self._shift,
                                   w & self._mask)

    def set(self, arr: SharedArray, i: int, value: float) -> None:
        w = arr.base + i
        self._protocol.store(self.proc, w >> self._shift,
                             w & self._mask, value)

    # --- block access ------------------------------------------------------------

    def get_block(self, arr: SharedArray, lo: int, hi: int) -> np.ndarray:
        """Copy of words [lo, hi) of the array (page faults as needed)."""
        base = arr.base
        w0, w1 = base + lo, base + hi
        shift, mask = self._shift, self._mask
        wpp = mask + 1
        out = np.empty(hi - lo, dtype=np.float64)
        pos = 0
        w = w0
        while w < w1:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, w1 - w)
            out[pos:pos + take] = self._protocol.load_range(
                self.proc, page, off, off + take)
            pos += take
            w += take
        return out

    def set_block(self, arr: SharedArray, lo: int,
                  values: np.ndarray) -> None:
        """Write ``values`` at word offset ``lo`` (page faults as needed)."""
        base = arr.base
        w = base + lo
        end = w + len(values)
        shift, mask = self._shift, self._mask
        wpp = mask + 1
        pos = 0
        while w < end:
            page = w >> shift
            off = w & mask
            take = min(wpp - off, end - w)
            self._protocol.store_range(self.proc, page, off,
                                       values[pos:pos + take])
            pos += take
            w += take

    # --- time ---------------------------------------------------------------------

    def compute(self, cpu_us: float, mem_bytes: float = 0.0) -> Compute:
        """A block of application computation; yield the returned object."""
        return Compute(cpu_us * self._cscale, mem_bytes * self._cscale)

    # --- synchronization --------------------------------------------------------------

    def barrier(self):
        """Generator: global barrier (with arrival flush / departure acquire)."""
        return self._rt.barrier.wait(self.proc)

    def acquire(self, lock_id: int):
        """Generator: acquire application lock ``lock_id``."""
        return self._rt.lock(lock_id).acquire(self.proc)

    def release(self, lock_id: int) -> None:
        self._rt.lock(lock_id).release(self.proc)

    def flag_set(self, name: str, index: int, value: int = 1) -> None:
        self._rt.flags(name).set(self.proc, index, value)

    def flag_wait(self, name: str, index: int, value: int = 1):
        """Generator: wait for a flag, then acquire."""
        return self._rt.flags(name).wait(self.proc, index, value)

    def flag_peek(self, name: str, index: int) -> int:
        """Read a flag without blocking or acquiring (polling checks)."""
        return self._rt.flags(name).peek(self.proc, index)

    # --- phases --------------------------------------------------------------------------

    def end_init(self) -> None:
        """Mark the end of the initialization phase: arms first-touch home
        relocation (call on every rank; idempotent)."""
        self._protocol.end_initialization()

    @property
    def parallel(self) -> bool:
        return True

"""DSM runtime: shared segment, worker environment, program runners."""

from .api import (SharedArray, SharedSegment, checking, checking_enabled,
                  metering, metrics_enabled, tracing, tracing_enabled)
from .env import WorkerEnv
from .program import (ComparisonResult, ParallelRuntime, RunResult, run_app,
                      run_and_verify)
from .sequential import SequentialEnv, run_sequential

__all__ = [
    "SharedArray", "SharedSegment", "WorkerEnv", "SequentialEnv",
    "ParallelRuntime", "RunResult", "ComparisonResult",
    "run_app", "run_and_verify", "run_sequential",
    "checking", "checking_enabled", "tracing", "tracing_enabled",
    "metering", "metrics_enabled",
]

"""Page frames and access permissions.

Shared memory is an array of 64-bit words split into pages. Each *owner*
(an SMP node under the two-level protocols, an individual processor under
the one-level protocols — the defining difference between them) has at
most one physical frame per page; all processors of a node share that
frame, which is exactly the paper's "all processors on a node share the
same physical frame for a shared data page" and is what lets hardware
coherence coalesce protocol transactions.

Frames are real numpy arrays: the protocols genuinely move application
data through twins, diffs, and home-node master copies, so a coherence
bug shows up as a wrong numerical answer.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import ProtocolError


class GenCounter:
    """A shared mutable generation counter for fast-path invalidation.

    Two counters exist per *owner* — a read generation and a write
    generation — shared between the owner's :class:`PageTable` and its
    :class:`FrameStore` slot; the runtime's inline page-access cache
    (:class:`repro.runtime.env.WorkerEnv`) snapshots ``value`` when it
    caches a ``(page -> frame)`` mapping. The read generation bumps when
    any mapping is lost entirely (a permission drops to INVALID, or a
    frame is mapped/unmapped); the write generation bumps on those events
    *and* on WRITE -> READ downgrades, so it changes at least as often.
    A cached entry is valid exactly while the matching counter is
    unchanged: no protocol action can revoke the needed permission or
    rebind a frame without the cache noticing. Loosening (granting
    rights) deliberately does not bump — it cannot invalidate anything —
    and neither do in-place frame *content* updates (incoming diffs,
    flush-updates): caches hold the frame object itself, so new contents
    are visible through it, exactly as on the uncached path.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        self.value += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GenCounter {self.value}>"


class Perm(enum.IntEnum):
    """Page access permissions, loosest-to-strictest ordered."""

    INVALID = 0
    READ = 1
    WRITE = 2  # read-write

    @classmethod
    def loosest(cls, perms) -> "Perm":
        """The loosest permission among ``perms`` (directory word rule)."""
        return cls(max(perms, default=cls.INVALID))


class FrameStore:
    """Physical page frames for every owner.

    ``owner`` ids index whatever replication domain the protocol uses
    (node ids for two-level, processor ids for one-level). Frames are
    created lazily on first map and dropped on unmap; the *home* owner's
    frame is the master copy and is created eagerly.
    """

    def __init__(self, num_owners: int, num_pages: int,
                 words_per_page: int,
                 gens: list[GenCounter] | None = None,
                 wgens: list[GenCounter] | None = None) -> None:
        if num_owners < 1 or num_pages < 1 or words_per_page < 1:
            raise ProtocolError("degenerate frame store geometry")
        self.num_owners = num_owners
        self.num_pages = num_pages
        self.words_per_page = words_per_page
        self._frames: list[dict[int, np.ndarray]] = [
            {} for _ in range(num_owners)]
        if gens is None:
            gens = [GenCounter() for _ in range(num_owners)]
        elif len(gens) != num_owners:
            raise ProtocolError(
                f"got {len(gens)} generation counters for "
                f"{num_owners} owners")
        if wgens is None:
            wgens = [GenCounter() for _ in range(num_owners)]
        elif len(wgens) != num_owners:
            raise ProtocolError(
                f"got {len(wgens)} write-generation counters for "
                f"{num_owners} owners")
        #: Per-owner read/write generation counters (shared with the
        #: owner's page table); a frame map or unmap bumps both.
        self.gens = gens
        self.wgens = wgens

    def has_frame(self, owner: int, page: int) -> bool:
        return page in self._frames[owner]

    def frame(self, owner: int, page: int) -> np.ndarray:
        """The owner's frame for ``page``; raises if not mapped."""
        try:
            return self._frames[owner][page]
        except KeyError:
            raise ProtocolError(
                f"owner {owner} has no frame for page {page}") from None

    def map_frame(self, owner: int, page: int,
                  contents: np.ndarray | None = None) -> np.ndarray:
        """Create (or return) the owner's frame, optionally initializing it."""
        frames = self._frames[owner]
        if page in frames:
            frame = frames[page]
            if contents is not None:
                frame[:] = contents
            return frame
        if contents is not None:
            frame = np.array(contents, dtype=np.float64, copy=True)
        else:
            frame = np.zeros(self.words_per_page, dtype=np.float64)
        frames[page] = frame
        self.gens[owner].value += 1  # new frame object: invalidate caches
        self.wgens[owner].value += 1
        return frame

    def unmap_frame(self, owner: int, page: int) -> None:
        if self._frames[owner].pop(page, None) is not None:
            self.gens[owner].value += 1
            self.wgens[owner].value += 1

    def frames_of(self, owner: int) -> dict[int, np.ndarray]:
        return self._frames[owner]

    def resident_pages(self, owner: int) -> list[int]:
        return sorted(self._frames[owner])

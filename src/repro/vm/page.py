"""Page frames and access permissions.

Shared memory is an array of 64-bit words split into pages. Each *owner*
(an SMP node under the two-level protocols, an individual processor under
the one-level protocols — the defining difference between them) has at
most one physical frame per page; all processors of a node share that
frame, which is exactly the paper's "all processors on a node share the
same physical frame for a shared data page" and is what lets hardware
coherence coalesce protocol transactions.

Frames are real numpy arrays: the protocols genuinely move application
data through twins, diffs, and home-node master copies, so a coherence
bug shows up as a wrong numerical answer.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import ProtocolError


class Perm(enum.IntEnum):
    """Page access permissions, loosest-to-strictest ordered."""

    INVALID = 0
    READ = 1
    WRITE = 2  # read-write

    @classmethod
    def loosest(cls, perms) -> "Perm":
        """The loosest permission among ``perms`` (directory word rule)."""
        return cls(max(perms, default=cls.INVALID))


class FrameStore:
    """Physical page frames for every owner.

    ``owner`` ids index whatever replication domain the protocol uses
    (node ids for two-level, processor ids for one-level). Frames are
    created lazily on first map and dropped on unmap; the *home* owner's
    frame is the master copy and is created eagerly.
    """

    def __init__(self, num_owners: int, num_pages: int,
                 words_per_page: int) -> None:
        if num_owners < 1 or num_pages < 1 or words_per_page < 1:
            raise ProtocolError("degenerate frame store geometry")
        self.num_owners = num_owners
        self.num_pages = num_pages
        self.words_per_page = words_per_page
        self._frames: list[dict[int, np.ndarray]] = [
            {} for _ in range(num_owners)]

    def has_frame(self, owner: int, page: int) -> bool:
        return page in self._frames[owner]

    def frame(self, owner: int, page: int) -> np.ndarray:
        """The owner's frame for ``page``; raises if not mapped."""
        try:
            return self._frames[owner][page]
        except KeyError:
            raise ProtocolError(
                f"owner {owner} has no frame for page {page}") from None

    def map_frame(self, owner: int, page: int,
                  contents: np.ndarray | None = None) -> np.ndarray:
        """Create (or return) the owner's frame, optionally initializing it."""
        frames = self._frames[owner]
        if page in frames:
            frame = frames[page]
            if contents is not None:
                frame[:] = contents
            return frame
        if contents is not None:
            frame = np.array(contents, dtype=np.float64, copy=True)
        else:
            frame = np.zeros(self.words_per_page, dtype=np.float64)
        frames[page] = frame
        return frame

    def unmap_frame(self, owner: int, page: int) -> None:
        self._frames[owner].pop(page, None)

    def frames_of(self, owner: int) -> dict[int, np.ndarray]:
        return self._frames[owner]

    def resident_pages(self, owner: int) -> list[int]:
        return sorted(self._frames[owner])

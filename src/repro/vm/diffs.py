"""Twins and diffs: the data-movement core of the Cashmere protocols.

A *twin* is a pristine copy of a page representing the node's latest view
of the home node's master copy (Section 2.5). Twins are used two ways:

* **Outgoing diff** — compare the working page to the twin; the differing
  words are the node's local modifications, which a release flushes to
  the home node. A *flush-update* writes them to the twin as well, so a
  later release does not re-flush (and overwrite newer remote changes).

* **Incoming diff** — compare a freshly fetched master copy to the twin;
  the differing words are exactly the modifications made on *remote*
  nodes (data-race-freedom guarantees they never overlap local dirty
  words). Writing them to both the working page and the twin updates the
  page without disturbing concurrent local writers — the paper's novel
  alternative to TLB shootdown ("two-way diffing").

These are pure numpy functions over page-sized arrays; the protocols
charge the measured costs separately.
"""

from __future__ import annotations

import numpy as np

from ..config import WORD_BYTES
from ..errors import DataRaceError


class Diff:
    """A sparse set of modified words: (indices, values)."""

    __slots__ = ("indices", "values")

    def __init__(self, indices: np.ndarray, values: np.ndarray) -> None:
        self.indices = indices
        self.values = values

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Wire size: one word of data plus one word of run header per word.

        Diffs are encoded as (offset, value) runs; charging two words per
        modified word is the conservative per-word encoding.
        """
        return len(self.indices) * 2 * WORD_BYTES

    def is_empty(self) -> bool:
        return len(self.indices) == 0


def make_twin(page: np.ndarray) -> np.ndarray:
    """Create a pristine copy of ``page``."""
    return page.copy()


def outgoing_diff(page: np.ndarray, twin: np.ndarray) -> Diff:
    """Local modifications: words where the working page differs from the twin."""
    changed = np.nonzero(page != twin)[0]
    return Diff(changed, page[changed].copy())


def apply_diff(target: np.ndarray, diff: Diff) -> None:
    """Write a diff's words into ``target`` (e.g. the home master copy)."""
    if len(diff):
        target[diff.indices] = diff.values


def flush_update(page: np.ndarray, twin: np.ndarray,
                 master: np.ndarray) -> Diff:
    """Release-time flush: write local modifications to the home *and* the twin.

    Updating the twin records that these modifications are now globally
    available, so subsequent releases on the node skip them (Section 2.5).
    Returns the diff that was flushed (possibly empty).
    """
    diff = outgoing_diff(page, twin)
    apply_diff(master, diff)
    apply_diff(twin, diff)
    return diff


def incoming_diff(fetched: np.ndarray, page: np.ndarray,
                  twin: np.ndarray, *, check_races: bool = True,
                  context: str = "") -> Diff:
    """Apply remote modifications from a fetched master copy (two-way diffing).

    Words where ``fetched`` differs from ``twin`` were modified remotely;
    they are written to both the working ``page`` and the ``twin``. With
    ``check_races`` the function verifies the data-race-free invariant the
    protocol relies on: a remotely modified word must not also be locally
    dirty (page != twin at the same index).
    """
    remote = np.nonzero(fetched != twin)[0]
    if check_races and len(remote):
        locally_dirty = page[remote] != twin[remote]
        if locally_dirty.any():
            bad = remote[np.nonzero(locally_dirty)[0][:4]]
            raise DataRaceError(
                f"incoming diff overlaps local modifications at words "
                f"{bad.tolist()}{' in ' + context if context else ''}; "
                f"the application is not data-race-free")
    diff = Diff(remote, fetched[remote].copy())
    apply_diff(page, diff)
    apply_diff(twin, diff)
    return diff

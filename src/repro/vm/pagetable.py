"""Per-owner page tables with per-processor permissions.

Under the two-level protocols each SMP node has one page table whose rows
carry a permission per *local processor* (the second-level directory's
mapping information); under the one-level protocols each processor is its
own owner with a single-column table. Permission changes model
``mprotect`` calls; the protocols charge the measured cost.
"""

from __future__ import annotations

from .page import Perm


class PageTable:
    """Permissions for one owner: ``perm(page, proc)`` for local processors."""

    def __init__(self, num_pages: int, procs: int) -> None:
        self.num_pages = num_pages
        self.procs = procs
        # One row per page; rows are plain lists for cheap fast-path access.
        self.rows: list[list[int]] = [[Perm.INVALID] * procs
                                      for _ in range(num_pages)]

    def perm(self, page: int, proc: int) -> Perm:
        return Perm(self.rows[page][proc])

    def set_perm(self, page: int, proc: int, perm: Perm) -> None:
        self.rows[page][proc] = int(perm)

    def loosest(self, page: int) -> Perm:
        """The loosest permission any local processor holds (directory rule)."""
        return Perm(max(self.rows[page]))

    def procs_with(self, page: int, at_least: Perm) -> list[int]:
        return [i for i, p in enumerate(self.rows[page]) if p >= at_least]

    def writers(self, page: int) -> list[int]:
        return self.procs_with(page, Perm.WRITE)

    def mapped(self, page: int) -> list[int]:
        return self.procs_with(page, Perm.READ)

    def downgrade_writers(self, page: int, to: Perm = Perm.READ) -> list[int]:
        """Drop every write mapping to ``to``; returns affected processors."""
        row = self.rows[page]
        affected = []
        for i, p in enumerate(row):
            if p >= Perm.WRITE:
                row[i] = int(to)
                affected.append(i)
        return affected

    def invalidate_all(self, page: int) -> list[int]:
        row = self.rows[page]
        affected = [i for i, p in enumerate(row) if p > Perm.INVALID]
        for i in affected:
            row[i] = int(Perm.INVALID)
        return affected

"""Per-owner page tables with per-processor permissions.

Under the two-level protocols each SMP node has one page table whose rows
carry a permission per *local processor* (the second-level directory's
mapping information); under the one-level protocols each processor is its
own owner with a single-column table. Permission changes model
``mprotect`` calls; the protocols charge the measured cost.
"""

from __future__ import annotations

from .page import GenCounter, Perm


class PageTable:
    """Permissions for one owner: ``perm(page, proc)`` for local processors."""

    def __init__(self, num_pages: int, procs: int,
                 gen: GenCounter | None = None,
                 wgen: GenCounter | None = None) -> None:
        self.num_pages = num_pages
        self.procs = procs
        # One row per page; rows are plain lists for cheap fast-path access.
        self.rows: list[list[int]] = [[Perm.INVALID] * procs
                                      for _ in range(num_pages)]
        #: Generation counters shared with this owner's frame-store slot,
        #: bumped on permission *tightening* (and, via the frame store, on
        #: every frame rebind) so the runtime's inline page-access cache
        #: can validate cached mappings. ``gen`` guards read mappings and
        #: bumps only when a mapping dies outright (-> INVALID); ``wgen``
        #: guards write mappings and additionally bumps on WRITE -> READ
        #: downgrades. Loosening is deliberately silent on both: granting
        #: rights cannot invalidate a cached mapping.
        self.gen = gen if gen is not None else GenCounter()
        self.wgen = wgen if wgen is not None else GenCounter()

    def perm(self, page: int, proc: int) -> int:
        """Current permission as a plain int (a :class:`Perm` value).

        Returned as ``int`` rather than ``Perm`` — this sits on the
        protocol fast path and the enum construction costs more than the
        lookup; ``Perm`` is an ``IntEnum`` so comparisons work either way.
        """
        return self.rows[page][proc]

    def set_perm(self, page: int, proc: int, perm: Perm) -> None:
        row = self.rows[page]
        value = int(perm)
        old = row[proc]
        if value != old:
            row[proc] = value
            if value < old:
                # Only *tightening* invalidates the inline page-access
                # cache: a cached (page -> frame) entry embodies rights
                # already granted, and granting a peer (or this
                # processor) more rights cannot make it stale. A drop to
                # INVALID kills read and write mappings alike; a
                # WRITE -> READ downgrade leaves read mappings intact.
                # Frame rebinds bump separately (FrameStore).
                self.wgen.value += 1
                if value < Perm.READ:
                    self.gen.value += 1

    def loosest(self, page: int) -> int:
        """The loosest permission any local processor holds (directory
        rule), as a plain int (see :meth:`perm`)."""
        return max(self.rows[page])

    def procs_with(self, page: int, at_least: Perm) -> list[int]:
        return [i for i, p in enumerate(self.rows[page]) if p >= at_least]

    def writers(self, page: int) -> list[int]:
        return self.procs_with(page, Perm.WRITE)

    def mapped(self, page: int) -> list[int]:
        return self.procs_with(page, Perm.READ)

    def downgrade_writers(self, page: int, to: Perm = Perm.READ) -> list[int]:
        """Drop every write mapping to ``to``; returns affected processors."""
        row = self.rows[page]
        affected = []
        for i, p in enumerate(row):
            if p >= Perm.WRITE:
                row[i] = int(to)
                affected.append(i)
        if affected:
            self.wgen.value += 1
            if to < Perm.READ:
                self.gen.value += 1
        return affected

    def invalidate_all(self, page: int) -> list[int]:
        row = self.rows[page]
        affected = [i for i, p in enumerate(row) if p > Perm.INVALID]
        for i in affected:
            row[i] = int(Perm.INVALID)
        if affected:
            self.gen.value += 1
            self.wgen.value += 1
        return affected

"""Virtual-memory substrate: frames, permissions, page tables, twins, diffs."""

from .diffs import (Diff, apply_diff, flush_update, incoming_diff, make_twin,
                    outgoing_diff)
from .page import FrameStore, Perm
from .pagetable import PageTable

__all__ = ["Perm", "FrameStore", "PageTable", "Diff", "make_twin",
           "outgoing_diff", "apply_diff", "flush_update", "incoming_diff"]

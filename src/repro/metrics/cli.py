"""The ``cashmere-repro metrics`` subcommand family.

Usage::

    cashmere-repro metrics bench  [--quick] [--label NAME]
    cashmere-repro metrics run    APP [--protocol 2L] [--interval US]
    cashmere-repro metrics import BENCH_a.json [BENCH_b.json ...]
    cashmere-repro metrics list
    cashmere-repro metrics report [--kind bench] [--gate FACTOR]
    cashmere-repro metrics html   [--out dashboard.html] [--gate FACTOR]

All subcommands share ``--db PATH`` (default: ``$CASHMERE_METRICS_DB``
or ``./metrics.db``). ``bench`` runs the wall-clock benchmark suite and
ingests the report; ``run`` executes one application with time-series
sampling and stores its series; ``import`` ingests committed
``BENCH_*.json`` documents (both the ``cashmere-bench-1`` and ``-2``
schemas) so historical runs join the trend. ``report`` prints the
terminal trend/regression table and **exits 1** when a gated wall-clock
counter regressed beyond ``--gate`` (default 2x) — this is the CI hook.
``html`` writes the self-contained dashboard.
"""

from __future__ import annotations

import argparse
import sys

from .dashboard import DEFAULT_GATE_FACTOR, TrendReport, render_html
from .store import RunStore, StoreError, default_db_path


def _add_db(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="sqlite store path (default: "
                             "$CASHMERE_METRICS_DB or ./metrics.db)")


def _add_gate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gate", type=float,
                        default=DEFAULT_GATE_FACTOR, metavar="FACTOR",
                        help="regression gate: latest *.wall_s worse than "
                             "FACTOR x previous fails (default "
                             f"{DEFAULT_GATE_FACTOR:g})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cashmere-repro metrics",
        description="Query and grow the sqlite-backed metrics run store.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bench", help="run the wall-clock benchmark suite "
                                     "and ingest the report")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--label", default="bench")
    _add_db(p)

    p = sub.add_parser("run", help="run one application with time-series "
                                   "sampling and store its series")
    p.add_argument("app")
    p.add_argument("--protocol", default="2L")
    p.add_argument("--interval", type=float, default=None, metavar="US",
                   help="sampling interval in simulated microseconds "
                        "(default 1000)")
    p.add_argument("--label", default=None)
    _add_db(p)

    p = sub.add_parser("import", help="ingest BENCH_*.json report files")
    p.add_argument("files", nargs="+", metavar="FILE")
    _add_db(p)

    p = sub.add_parser("list", help="list recorded runs")
    _add_db(p)

    p = sub.add_parser("report", help="print the trend/regression table "
                                      "(exit 1 on gated regression)")
    p.add_argument("--kind", default="bench", choices=["bench", "run"])
    _add_gate(p)
    _add_db(p)

    p = sub.add_parser("html", help="write the HTML dashboard")
    p.add_argument("--out", default="dashboard.html", metavar="PATH")
    _add_gate(p)
    _add_db(p)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    db = args.db or default_db_path()
    try:
        with RunStore(db) as store:
            return _dispatch(args, store)
    except StoreError as exc:
        print(f"cashmere-repro metrics: error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace, store: RunStore) -> int:
    if args.command == "bench":
        from ..experiments.bench import run_bench
        report = run_bench(quick=args.quick,
                           progress=lambda name: print(
                               f"  bench: {name}...", file=sys.stderr))
        run_id = store.ingest_bench(report.to_json(), label=args.label)
        print(f"ingested bench run #{run_id} into {store.path}")
        return 0

    if args.command == "run":
        from ..experiments.traceprof import run_metered
        result = run_metered(args.app, args.protocol,
                             interval_us=args.interval)
        run_id = store.ingest_result(result, label=args.label)
        assert result.metrics is not None
        print(f"ingested run #{run_id} into {store.path} "
              f"({result.metrics.num_samples} samples, "
              f"{len(result.metrics.series)} series)")
        return 0

    if args.command == "import":
        for path in args.files:
            run_id = store.import_bench_json(path)
            print(f"imported {path} as run #{run_id}")
        return 0

    if args.command == "list":
        runs = store.runs()
        if not runs:
            print(f"{store.path}: no runs recorded")
            return 0
        for run in runs:
            what = run["app"] or "-"
            if run["protocol"]:
                what += f"/{run['protocol']}"
            print(f"#{run['id']:<3d} {run['kind']:5s} "
                  f"{run['label']:30s} {what:14s} "
                  f"{run['ingested_at']}  [{run['schema_version']}]")
        return 0

    if args.command == "report":
        report = TrendReport(store, kind=args.kind, gate_factor=args.gate)
        print(report.format())
        return 0 if report.ok else 1

    if args.command == "html":
        document = render_html(store, gate_factor=args.gate)
        with open(args.out, "w") as fh:
            fh.write(document)
        print(f"wrote {args.out} ({len(document)} bytes)")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")

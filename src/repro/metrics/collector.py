"""The metrics collector: periodic simulated-time sampling.

A :class:`MetricsCollector` is attached to a configured execution by
:func:`attach_metrics` (the parallel runtime does this when metrics are
enabled via ``MachineConfig(metrics=True)`` or the
``repro.runtime.metering()`` context manager). It rides the simulator's
``on_advance`` hook: whenever the simulated clock crosses a sampling
boundary ``k * interval_us`` the collector records

* **gauges** — instantaneous state polled from the live structures:
  per-owner directory occupancy and the page-state histogram
  (:meth:`~repro.protocol.directory.GlobalDirectory.occupancy`),
  per-node request-queue depths, twin/notice backlogs via the
  protocol's ``metrics_gauges`` hook, and the tracer's ring-buffer drop
  count when tracing is also enabled;
* **deltas** — the change since the previous sample of cumulative
  sources: the Table-3 protocol counters summed over all processors,
  Memory Channel traffic bytes by category, link busy time (reported as
  a utilization fraction of the interval), and the runtime fast-path's
  software-TLB hit/miss counts.

Like the correctness checker and the tracer, collection is strictly
observational: sampling never charges time, never schedules events, and
never touches protocol or simulator state — a metered run produces
byte-identical statistics and results to an unmetered one
(``tests/test_metrics.py`` asserts this under all four protocols).
Because the simulator is deterministic, the sampled series are exact,
reproducible artifacts: the same run recorded twice yields identical
series, so any series change between two source revisions is a real
behavioral difference.
"""

from __future__ import annotations

from typing import Callable

#: Default sampling interval in simulated microseconds. Experiment-scale
#: runs last ~10^5..10^6 us, giving a few hundred to a few thousand
#: samples per series.
DEFAULT_INTERVAL_US = 1000.0

#: The protocol counters sampled as per-interval deltas (a stable subset
#: of :data:`repro.stats.counters.COUNTER_NAMES`: the Table 3 rows plus
#: the fault-injection NAK/retry activity).
TRACKED_COUNTERS = (
    "read_faults",
    "write_faults",
    "page_transfers",
    "directory_updates",
    "write_notices",
    "twin_creations",
    "incoming_diffs",
    "flush_updates",
    "shootdowns",
    "doubled_words",
    "requests_served",
    "lock_acquires",
    "barriers_crossed",
    "barrier_combine_hops",
    "request_naks",
    "request_retries",
    "notice_resyncs",
)


class MetricsCollector:
    """Sampled time series for one simulated execution."""

    def __init__(self, interval_us: float = DEFAULT_INTERVAL_US) -> None:
        if interval_us <= 0:
            raise ValueError("metrics interval must be positive")
        self.interval_us = float(interval_us)
        #: Series name -> parallel (times, values) lists.
        self.series: dict[str, tuple[list[float], list[float]]] = {}
        #: Run metadata, filled by :meth:`finalize`.
        self.meta: dict = {}
        #: Shared software-TLB counter cell ``[hits, misses]``, bumped by
        #: the worker environments' counting access closures
        #: (:class:`repro.runtime.env.WorkerEnv`).
        self.tlb = [0, 0]
        self._next = self.interval_us
        self._last_t = 0.0
        self._cluster = None
        self._protocol = None
        self._tracer = None
        self._last_counters: dict[str, int] = {}
        self._last_traffic: dict[str, int] = {}
        self._last_busy = 0.0
        self._last_tlb = [0, 0]
        self._finalized = False

    # --- wiring -------------------------------------------------------------

    def bind(self, cluster, protocol, tracer=None) -> None:
        """Point the collector at a configured execution (before run)."""
        self._cluster = cluster
        self._protocol = protocol
        self._tracer = tracer
        # Baseline the cumulative sources at attach time so the first
        # sample's deltas cover exactly the first interval.
        self._last_counters = self._counter_totals()
        self._last_traffic = dict(cluster.mc.traffic)
        busy, _ = cluster.mc.bandwidth_snapshot()
        self._last_busy = busy
        self._last_tlb = list(self.tlb)

    # --- sampling (driven by Simulator.on_advance) --------------------------

    def on_advance(self, now: float) -> None:
        """Simulator hook: sample every boundary the clock crossed."""
        nxt = self._next
        if now < nxt:
            return
        interval = self.interval_us
        while nxt <= now:
            self._sample(nxt)
            nxt += interval
        self._next = nxt

    def finalize(self, end_time_us: float, **meta) -> None:
        """Take the final (partial-interval) sample and record metadata."""
        if not self._finalized:
            self._finalized = True
            if end_time_us > self._last_t:
                self._sample(end_time_us)
        self.meta.update(meta)

    # --- one sample ---------------------------------------------------------

    def _record(self, name: str, t: float, value: float) -> None:
        entry = self.series.get(name)
        if entry is None:
            entry = ([], [])
            self.series[name] = entry
        entry[0].append(t)
        entry[1].append(value)

    def _counter_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for proc in self._cluster.processors:
            for name, value in proc.stats.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def _sample(self, t: float) -> None:
        record = self._record
        elapsed = t - self._last_t
        self._last_t = t

        # Counter deltas (Table 3 activity per interval).
        totals = self._counter_totals()
        last = self._last_counters
        for name in TRACKED_COUNTERS:
            record(f"ctr.{name}", t, totals.get(name, 0) - last.get(name, 0))
        self._last_counters = totals

        # Memory Channel: per-category byte deltas and link utilization.
        mc = self._cluster.mc
        busy, traffic = mc.bandwidth_snapshot()
        for category, total in traffic.items():
            record(f"mc.bytes.{category}", t,
                   total - self._last_traffic.get(category, 0))
        self._last_traffic = traffic
        capacity = elapsed * mc.links.channels
        record("mc.util", t,
               (busy - self._last_busy) / capacity if capacity > 0 else 0.0)
        self._last_busy = busy

        # Request-queue depths (explicit request backlog per node).
        total_depth = 0
        for node in self._cluster.nodes:
            depth = len(node.request_queue)
            total_depth += depth
            record(f"reqq.n{node.id}", t, depth)
        record("reqq.total", t, total_depth)

        # Directory occupancy and the page-state histogram.
        per_owner, histogram = self._protocol.directory.occupancy()
        occ_total = 0
        for owner, count in enumerate(per_owner):
            occ_total += count
            record(f"dir.occ.o{owner}", t, count)
        record("dir.occ.total", t, occ_total)
        for state, count in zip(("invalid", "read", "write", "excl"),
                                histogram):
            record(f"pages.{state}", t, count)

        # Protocol-specific gauges (twin counts, notice backlogs).
        self._protocol.metrics_gauges(
            lambda name, value: record(f"proto.{name}", t, value))

        # Software-TLB (runtime fast path) hit/miss deltas and rate.
        hits, misses = self.tlb
        dh = hits - self._last_tlb[0]
        dm = misses - self._last_tlb[1]
        self._last_tlb = [hits, misses]
        record("tlb.hits", t, dh)
        record("tlb.misses", t, dm)
        record("tlb.hit_rate", t, dh / (dh + dm) if dh + dm else 0.0)

        # Tracing ring-buffer drops (only when a tracer is attached).
        if self._tracer is not None:
            record("trace.dropped", t, self._tracer.dropped)

    # --- export -------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        """Samples taken so far (length of the longest series)."""
        longest = 0
        for times, _ in self.series.values():
            longest = max(longest, len(times))
        return longest

    def to_payload(self) -> dict:
        """Plain-dict form for the run store / JSON export."""
        return {
            "interval_us": self.interval_us,
            "meta": dict(self.meta),
            "series": {name: {"t": list(times), "v": list(values)}
                       for name, (times, values) in self.series.items()},
        }


def attach_metrics(cluster, protocol, *,
                   interval_us: float = DEFAULT_INTERVAL_US,
                   tracer=None) -> MetricsCollector:
    """Create a collector and install it on a configured execution.

    Mirrors :func:`repro.trace.attach_tracer`: must run before the
    simulation starts (and before worker environments are built, so the
    fast-path TLB counting closures see the collector).
    """
    collector = MetricsCollector(interval_us=interval_us)
    collector.bind(cluster, protocol, tracer=tracer)
    protocol.metrics = collector
    cluster.metrics = collector
    cluster.sim.on_advance = collector.on_advance
    return collector

"""Trend and regression views over a :class:`~repro.metrics.store.RunStore`.

Two renderings of the same analysis:

* :class:`TrendReport` — a terminal table: every counter shared by at
  least two runs of the same kind, its value trajectory across runs
  (with a unicode sparkline), the latest-vs-previous delta, and a
  verdict. Wall-clock counters (``*.wall_s``) gate: latest worse than
  ``gate_factor`` x previous fails the report (exit code 1 on the CLI),
  which is how CI consumes it.
* :func:`render_html` — a self-contained dashboard (inline SVG line
  charts, no external assets): the trend table plus the sampled time
  series of the most recent metered simulation runs.

Both read only the store; neither runs simulations.
"""

from __future__ import annotations

import html
import json

from .store import RunStore

#: Latest/previous ratio above which a wall-clock counter is a regression.
DEFAULT_GATE_FACTOR = 2.0

#: Sparkline glyph ramp (min -> max over the counter's trajectory).
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A one-cell-per-value unicode trend glyph string."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1,
                    int((v - lo) / span * len(_SPARKS)))]
        for v in values)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


class Trend:
    """One counter's trajectory across the compared runs."""

    def __init__(self, name: str, values: list[float]) -> None:
        self.name = name
        self.values = values

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def previous(self) -> float:
        return self.values[-2]

    @property
    def ratio(self) -> float | None:
        """latest / previous, or None when previous is zero."""
        if self.previous == 0:
            return None
        return self.latest / self.previous

    def gates(self) -> bool:
        """Does this counter participate in the regression gate?"""
        return self.name.endswith(".wall_s")

    def regressed(self, factor: float) -> bool:
        return (self.gates() and self.ratio is not None
                and self.ratio > factor)


class TrendReport:
    """Counter trends across every run of one kind, oldest to newest."""

    def __init__(self, store: RunStore, kind: str = "bench", *,
                 gate_factor: float = DEFAULT_GATE_FACTOR) -> None:
        self.kind = kind
        self.gate_factor = gate_factor
        self.runs = store.runs(kind=kind)
        self.counters = {run["id"]: store.counters(run["id"])
                         for run in self.runs}
        self.trends: list[Trend] = []
        if len(self.runs) >= 2:
            shared = set(self.counters[self.runs[0]["id"]])
            for run in self.runs[1:]:
                shared &= set(self.counters[run["id"]])
            for name in sorted(shared):
                self.trends.append(Trend(name, [
                    self.counters[run["id"]][name] for run in self.runs]))

    def regressions(self) -> list[Trend]:
        return [t for t in self.trends if t.regressed(self.gate_factor)]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def format(self) -> str:
        lines = [f"Trend report: {len(self.runs)} {self.kind} run(s), "
                 f"gate {self.gate_factor:g}x on *.wall_s"]
        if not self.runs:
            lines.append("  (store has no runs of this kind)")
            return "\n".join(lines)
        for run in self.runs:
            lines.append(f"  #{run['id']:<3d} {run['label']:30s} "
                         f"{run['ingested_at']}  [{run['schema_version']}]")
        if len(self.runs) < 2:
            lines.append("  (need two runs to compare; ingest another)")
            return "\n".join(lines)
        lines.append("")
        width = max((len(t.name) for t in self.trends), default=4)
        lines.append(f"  {'counter':{width}s} {'previous':>12s} "
                     f"{'latest':>12s} {'ratio':>7s}  trend")
        for t in self.trends:
            ratio = "-" if t.ratio is None else f"{t.ratio:.2f}x"
            verdict = ""
            if t.regressed(self.gate_factor):
                verdict = "  << REGRESSED"
            elif t.gates() and t.ratio is not None and t.ratio < 1 \
                    / self.gate_factor:
                verdict = "  (improved)"
            lines.append(f"  {t.name:{width}s} {_fmt(t.previous):>12s} "
                         f"{_fmt(t.latest):>12s} {ratio:>7s}  "
                         f"{sparkline(t.values)}{verdict}")
        bad = self.regressions()
        lines.append("")
        if bad:
            lines.append(f"REGRESSIONS: {len(bad)} gated counter(s) worse "
                         f"than {self.gate_factor:g}x previous:")
            for t in bad:
                lines.append(f"  {t.name}: {_fmt(t.previous)} -> "
                             f"{_fmt(t.latest)} ({t.ratio:.2f}x)")
        else:
            lines.append("no gated regressions")
        return "\n".join(lines)


# --- HTML ---------------------------------------------------------------------


def _svg_line(times: list[float], values: list[float], *,
              width: int = 640, height: int = 120) -> str:
    """A minimal inline SVG polyline chart of one metric series."""
    if not times:
        return "<svg/>"
    t0, t1 = times[0], times[-1]
    lo, hi = min(values), max(values)
    tspan = (t1 - t0) or 1.0
    vspan = (hi - lo) or 1.0
    pad = 4
    points = " ".join(
        f"{pad + (t - t0) / tspan * (width - 2 * pad):.1f},"
        f"{height - pad - (v - lo) / vspan * (height - 2 * pad):.1f}"
        for t, v in zip(times, values))
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" style="background:#fafafa;'
            f'border:1px solid #ddd">'
            f'<polyline fill="none" stroke="#27697a" stroke-width="1.5" '
            f'points="{points}"/>'
            f'<text x="{pad}" y="12" font-size="10" fill="#777">'
            f'max {_fmt(hi)}</text>'
            f'<text x="{pad}" y="{height - 6}" font-size="10" '
            f'fill="#777">min {_fmt(lo)}</text></svg>')


def render_html(store: RunStore, *, gate_factor: float =
                DEFAULT_GATE_FACTOR, max_series_runs: int = 3) -> str:
    """The whole dashboard as one self-contained HTML document."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>cashmere-repro metrics</title><style>",
        "body{font-family:sans-serif;margin:2em;color:#222}",
        "table{border-collapse:collapse;margin:1em 0}",
        "td,th{border:1px solid #ccc;padding:3px 9px;font-size:13px;"
        "text-align:right}",
        "td:first-child,th:first-child{text-align:left;"
        "font-family:monospace}",
        ".bad{background:#fdd}.good{background:#dfd}",
        "h2{margin-top:1.6em}</style></head><body>",
        "<h1>cashmere-repro metrics dashboard</h1>",
    ]
    for kind in ("bench", "run"):
        report = TrendReport(store, kind=kind, gate_factor=gate_factor)
        if not report.runs:
            continue
        parts.append(f"<h2>{kind} runs</h2><table><tr><th>id</th>"
                     "<th>label</th><th>app</th><th>protocol</th>"
                     "<th>schema</th><th>ingested</th></tr>")
        for run in report.runs:
            parts.append(
                "<tr>" + "".join(
                    f"<td>{html.escape(str(run[c] or ''))}</td>"
                    for c in ("id", "label", "app", "protocol",
                              "schema_version", "ingested_at")) + "</tr>")
        parts.append("</table>")
        if report.trends:
            parts.append("<table><tr><th>counter</th><th>previous</th>"
                         "<th>latest</th><th>ratio</th><th>trend</th></tr>")
            for t in report.trends:
                cls = ""
                if t.regressed(gate_factor):
                    cls = " class='bad'"
                elif t.gates() and t.ratio is not None \
                        and t.ratio < 1 / gate_factor:
                    cls = " class='good'"
                ratio = "-" if t.ratio is None else f"{t.ratio:.2f}x"
                parts.append(
                    f"<tr{cls}><td>{html.escape(t.name)}</td>"
                    f"<td>{_fmt(t.previous)}</td><td>{_fmt(t.latest)}</td>"
                    f"<td>{ratio}</td><td style='font-family:monospace'>"
                    f"{sparkline(t.values)}</td></tr>")
            parts.append("</table>")
            bad = report.regressions()
            if bad:
                parts.append(f"<p class='bad'><b>{len(bad)} gated "
                             f"regression(s)</b> (&gt; {gate_factor:g}x "
                             "previous).</p>")
            else:
                parts.append("<p>No gated regressions.</p>")
    sim_runs = store.runs(kind="run")[-max_series_runs:]
    for run in sim_runs:
        names = store.series_names(run["id"])
        if not names:
            continue
        parts.append(f"<h2>series: #{run['id']} "
                     f"{html.escape(run['label'])}</h2>")
        manifest = store.manifest(run["id"])
        parts.append("<p style='font-family:monospace;font-size:12px'>"
                     + html.escape(json.dumps(
                         {k: manifest[k] for k in
                          ("app", "protocol", "nodes", "procs_per_node",
                           "interval_us") if k in manifest})) + "</p>")
        for name in names:
            times, values = store.series(run["id"], name)
            if len(times) < 2 or min(values) == max(values) == 0:
                continue
            parts.append(f"<h3 style='font-family:monospace;font-size:13px;"
                         f"margin:0.8em 0 0.2em'>{html.escape(name)}</h3>")
            parts.append(_svg_line(times, values))
    parts.append("</body></html>")
    return "".join(parts)

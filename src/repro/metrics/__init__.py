"""Time-series metrics: sampled gauges and counter deltas over
simulated time, plus a sqlite-backed run store and trend dashboard.

Three layers (DESIGN.md §13):

* :mod:`repro.metrics.collector` — a :class:`MetricsCollector` attached
  to a configured execution (``MachineConfig(metrics=True)`` or the
  ``repro.runtime.metering()`` context manager). Driven by the
  simulator's ``on_advance`` hook, it samples gauges (directory
  occupancy, page-state histogram, Memory Channel utilization,
  request-queue depths, software-TLB hit rate) at fixed simulated-time
  intervals and records deltas of the protocol counters between
  samples. Strictly observational, like tracing and checking: a metered
  run is byte-identical to an unmetered one.
* :mod:`repro.metrics.store` — :class:`~repro.metrics.store.RunStore`,
  a sqlite database of runs: provenance-stamped manifests, final
  counters, and metric series; imports the committed ``BENCH_*.json``
  history.
* :mod:`repro.metrics.dashboard` — terminal trend/regression report and
  a self-contained HTML dashboard over the store.

``cashmere-repro metrics`` (:mod:`repro.metrics.cli`) drives all three.

Only the collector is imported here: the store and dashboard pull in
the experiment harness, which itself imports the runtime — importing
them lazily keeps ``repro.runtime.program -> repro.metrics`` cycle-free.
"""

from .collector import (DEFAULT_INTERVAL_US, MetricsCollector,
                        attach_metrics)

__all__ = ["MetricsCollector", "attach_metrics", "DEFAULT_INTERVAL_US"]

"""The sqlite-backed run store: provenance-stamped metrics history.

Every recorded run — a metered simulation, a wall-clock bench suite, an
imported ``BENCH_*.json`` — becomes one row in ``runs`` with a manifest
(JSON provenance: store schema version, canonical config key, source
digest, seed, environment) plus its final scalar ``counters`` and any
sampled time ``series``. The store is the substrate the trend/regression
dashboard (:mod:`repro.metrics.dashboard`) and the ``cashmere-repro
metrics`` CLI (:mod:`repro.metrics.cli`) query.

Determinism contract: *simulated* content (counters derived from a run,
metric series) is a pure function of the spec and the source tree, same
as the sweep cache (DESIGN.md §11); only the ``ingested_at`` stamp and
the wall-clock numbers inside bench manifests read real time, which is
why ``repro/metrics`` is a sanctioned wall-clock package for the
determinism lint — timestamps at ingest only, never inside simulation.

Import this module explicitly (``from repro.metrics.store import
RunStore``): ``repro.metrics``'s package init stays collector-only so
the runtime can import it without dragging in the experiments layer.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

#: Bump when the table layout or manifest/counter naming changes.
STORE_SCHEMA = "cashmere-metrics-1"

#: Default store location, unless ``CASHMERE_METRICS_DB`` says otherwise.
DEFAULT_DB = "metrics.db"

#: Bench report schemas this store knows how to flatten.
BENCH_SCHEMAS = ("cashmere-bench-1", "cashmere-bench-2",
                 "cashmere-bench-3")

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    label          TEXT NOT NULL,
    kind           TEXT NOT NULL,
    app            TEXT,
    protocol       TEXT,
    schema_version TEXT NOT NULL,
    config_key     TEXT,
    source_digest  TEXT,
    seed           TEXT,
    ingested_at    TEXT NOT NULL,
    manifest       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS series (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    name   TEXT NOT NULL,
    idx    INTEGER NOT NULL,
    t_us   REAL NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name, idx)
);
"""


def default_db_path() -> str:
    """Store location: ``CASHMERE_METRICS_DB`` or ``./metrics.db``."""
    return os.environ.get("CASHMERE_METRICS_DB") or DEFAULT_DB


def ingest_stamp() -> str:
    """Wall-clock provenance stamp for a store write.

    The only place the metrics layer reads real time directly; analogous
    to :func:`repro.experiments.sweep.wall_clock` (and sanctioned the
    same way by the determinism lint). Never called during simulation.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%S")


class StoreError(Exception):
    """A store file is unreadable or from an incompatible schema."""


class RunStore:
    """One sqlite metrics store (created on first open)."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path or default_db_path()
        self.db = sqlite3.connect(self.path)
        self.db.executescript(_TABLES)
        row = self.db.execute(
            "SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is None:
            self.db.execute("INSERT INTO meta VALUES ('schema', ?)",
                            (STORE_SCHEMA,))
            self.db.commit()
        elif row[0] != STORE_SCHEMA:
            raise StoreError(
                f"{self.path}: store schema {row[0]!r} != {STORE_SCHEMA!r};"
                f" start a fresh store")

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --- ingestion ----------------------------------------------------------

    def ingest(self, *, label: str, kind: str, manifest: dict,
               counters: dict, series: dict | None = None) -> int:
        """Record one run; returns its store id.

        ``counters`` maps name -> final scalar; ``series`` maps name ->
        ``{"t": [...], "v": [...]}`` sampled over simulated time.
        """
        row = (label, kind, manifest.get("app"), manifest.get("protocol"),
               str(manifest.get("schema_version", STORE_SCHEMA)),
               manifest.get("config_key"), manifest.get("source_digest"),
               None if manifest.get("seed") is None
               else str(manifest["seed"]),
               ingest_stamp(), json.dumps(manifest, sort_keys=True))
        cur = self.db.execute(
            "INSERT INTO runs (label, kind, app, protocol, schema_version,"
            " config_key, source_digest, seed, ingested_at, manifest)"
            " VALUES (?,?,?,?,?,?,?,?,?,?)", row)
        run_id = cur.lastrowid
        assert run_id is not None
        self.db.executemany(
            "INSERT INTO counters VALUES (?,?,?)",
            [(run_id, name, float(value))
             for name, value in sorted(counters.items())])
        for name, sv in sorted((series or {}).items()):
            self.db.executemany(
                "INSERT INTO series VALUES (?,?,?,?,?)",
                [(run_id, name, i, float(t), float(v))
                 for i, (t, v) in enumerate(zip(sv["t"], sv["v"]))])
        self.db.commit()
        return run_id

    def ingest_result(self, result, *, label: str | None = None) -> int:
        """Record a metered simulation (:class:`~repro.runtime.RunResult`).

        The run must have been executed with metrics enabled; its final
        aggregate counters, time buckets, and traffic become store
        counters and its sampled series go in whole.
        """
        from ..experiments.sweep import config_key, source_digest
        if result.metrics is None:
            raise StoreError(
                "run has no metrics; enable MachineConfig.metrics or "
                "run under repro.metering()")
        rt = result.runtime
        stats = result.stats
        payload = result.metrics.to_payload()
        manifest = {
            "schema_version": STORE_SCHEMA,
            "config_key": repr(config_key(rt.config)),
            "source_digest": source_digest(),
            "seed": rt.params.get("seed"),
            "app": rt.app.name,
            "protocol": rt.protocol.name,
            "nodes": rt.config.nodes,
            "procs_per_node": rt.config.procs_per_node,
            "interval_us": payload["interval_us"],
        }
        counters: dict = {"exec_time_us": stats.exec_time_us}
        for name, value in stats.aggregate.counters.items():
            counters[f"ctr.{name}"] = value
        for name, value in stats.aggregate.buckets.items():
            counters[f"bucket.{name}"] = value
        for cat, nbytes in stats.mc_traffic_bytes.items():
            counters[f"mc_bytes.{cat}"] = nbytes
        counters["mc_bytes.total"] = sum(stats.mc_traffic_bytes.values())
        return self.ingest(
            label=label or f"{rt.app.name}/{rt.protocol.name}",
            kind="run", manifest=manifest, counters=counters,
            series=payload["series"])

    def ingest_bench(self, report: dict, *, label: str) -> int:
        """Record a bench report (the ``BENCH_*.json`` document shape).

        Accepts any schema in :data:`BENCH_SCHEMAS`: every benchmark's
        wall time (and simulated throughput, where present) flattens to
        ``<bench>.wall_s`` / ``<bench>.sim_us`` / ... counters, so bench
        runs from before and after the ``cashmere-bench-2`` bump compare
        in one trend report.
        """
        schema = report.get("schema")
        if schema not in BENCH_SCHEMAS:
            raise StoreError(
                f"unknown bench schema {schema!r} (expected one of "
                f"{', '.join(BENCH_SCHEMAS)})")
        manifest = {
            "schema_version": schema,
            "timestamp": report.get("timestamp"),
            "python": report.get("python"),
            "numpy": report.get("numpy"),
            "platform": report.get("platform"),
            "quick": report.get("quick"),
            # bench-2 additions (absent from bench-1 documents):
            "fastpath": report.get("fastpath"),
            "jobs": report.get("jobs"),
            # bench-3 addition:
            "lowering": report.get("lowering"),
        }
        counters: dict = {}
        for name, entry in report.get("benchmarks", {}).items():
            for key in ("wall_s", "sim_us", "sim_us_per_wall_s", "hits",
                        "misses", "executed", "cells", "jobs", "speedup",
                        # scale-family and directory-bench series:
                        "procs", "mc_mbytes", "barrier_us_per_episode",
                        "sharers_per_page", "per_op_us_8",
                        "per_op_us_64", "per_op_us_512", "flatness",
                        "dense_per_op_us_512"):
                value = entry.get(key)
                if isinstance(value, (int, float)):
                    counters[f"{name}.{key}"] = value
        return self.ingest(label=label, kind="bench", manifest=manifest,
                           counters=counters)

    def import_bench_json(self, path: str, *,
                          label: str | None = None) -> int:
        """Ingest a ``BENCH_*.json`` file from disk."""
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot read bench report {path}: {exc}") \
                from exc
        return self.ingest_bench(report, label=label
                                 or os.path.basename(path))

    # --- queries ------------------------------------------------------------

    def runs(self, kind: str | None = None) -> list[dict]:
        """All recorded runs (oldest first), as plain dicts."""
        sql = ("SELECT id, label, kind, app, protocol, schema_version,"
               " config_key, source_digest, seed, ingested_at FROM runs")
        params: tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        cols = ("id", "label", "kind", "app", "protocol", "schema_version",
                "config_key", "source_digest", "seed", "ingested_at")
        return [dict(zip(cols, row))
                for row in self.db.execute(sql + " ORDER BY id", params)]

    def manifest(self, run_id: int) -> dict:
        row = self.db.execute("SELECT manifest FROM runs WHERE id = ?",
                              (run_id,)).fetchone()
        if row is None:
            raise StoreError(f"no run {run_id} in {self.path}")
        return json.loads(row[0])

    def counters(self, run_id: int) -> dict:
        return dict(self.db.execute(
            "SELECT name, value FROM counters WHERE run_id = ?"
            " ORDER BY name", (run_id,)))

    def series_names(self, run_id: int) -> list[str]:
        return [row[0] for row in self.db.execute(
            "SELECT DISTINCT name FROM series WHERE run_id = ?"
            " ORDER BY name", (run_id,))]

    def series(self, run_id: int, name: str) \
            -> tuple[list[float], list[float]]:
        times: list[float] = []
        values: list[float] = []
        for t, v in self.db.execute(
                "SELECT t_us, value FROM series WHERE run_id = ?"
                " AND name = ? ORDER BY idx", (run_id, name)):
            times.append(t)
            values.append(v)
        return times, values

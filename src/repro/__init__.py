"""Cashmere-2L reproduction: software coherent shared memory on a
simulated clustered remote-write network.

Reimplementation of the system described in

    Stets, Dwarkadas, Hardavellas, Hunt, Kontothanassis, Parthasarathy,
    Scott. "Cashmere-2L: Software Coherent Shared Memory on a Clustered
    Remote-Write Network." SOSP 1997.

as a deterministic discrete-event simulation: the coherence protocols
(Cashmere-2L/2LS/1LD/1L) run for real over a simulated Memory Channel
and cluster of SMP nodes, moving real application data, with execution
time charged from the paper's measured primitive costs.

Quick start::

    from repro import MachineConfig, run_and_verify
    from repro.apps import SOR

    app = SOR()
    cmp = run_and_verify(app, app.default_params(),
                         MachineConfig(nodes=4, procs_per_node=2),
                         protocol="2L")
    print(f"speedup {cmp.speedup:.2f}, verified={cmp.verified}")
"""

from .config import (CostModel, MachineConfig, PLACEMENTS, Protocol,
                     placement_config)
from .errors import (CashmereError, CoherenceViolation, ConfigError,
                     DataRaceError, DeadlockError, MemoryChannelError,
                     ProtocolError, SimulationError, UnknownCounterError)
from .runtime import (ComparisonResult, RunResult, checking, metering,
                      run_and_verify, run_app, run_sequential, tracing)
from .stats import RunStats

__version__ = "1.0.0"

__all__ = [
    "MachineConfig", "CostModel", "Protocol", "PLACEMENTS",
    "placement_config",
    "run_app", "run_and_verify", "run_sequential", "checking", "tracing",
    "metering",
    "RunResult", "ComparisonResult", "RunStats",
    "CashmereError", "ConfigError", "ProtocolError", "SimulationError",
    "DeadlockError", "MemoryChannelError", "DataRaceError",
    "CoherenceViolation", "UnknownCounterError",
    "__version__",
]

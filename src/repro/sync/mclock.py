"""Memory Channel locks (Section 2.3, "Synchronization").

A lock is an array in Memory Channel space with one entry per owner,
replicated everywhere and configured for *loop-back*: a writer sees its
own write return through the hub, which tells it the write has been
globally performed. To acquire, a process sets its entry, waits for
loop-back, and reads the whole array: if its entry is the only one set it
holds the lock; otherwise it clears its entry, backs off, and retries.

Under the two-level protocols, processors within a node first serialize
on a local ll/sc test-and-set flag, so at most one processor per node
competes on the Memory Channel; this adds a little latency (19 us vs
11 us uncontended) but reduces global traffic.

Acquire/release run the protocol's consistency actions: acquire-side
invalidation after the lock is obtained, release-side flushing before the
lock is dropped — the write that frees the lock is issued only after the
flushes, so a subsequent acquirer's page fetches observe them.

Simulation note: the *uncontended* path performs the full set /
loop-back / read-array sequence, reproducing the measured 11 us / 19 us
costs. Under contention, rather than simulating every test-and-back-off
retry as events (which costs O(waiters^2) simulator events per handoff),
waiters queue in arrival order and each handoff charges the loser one
failed attempt's worth of time — the same first-order timing with O(1)
events. ``contended_retries`` still counts the implied retries.
"""

from __future__ import annotations

from collections import deque

from ..cluster.machine import Cluster, Processor
from ..errors import SimulationError
from ..sim.engine import Condition
from ..sim.process import Sleep, Wait


class MCLock:
    """One application (or protocol) lock."""

    def __init__(self, cluster: Cluster, protocol, lock_id: int) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.lock_id = lock_id
        self.two_level = protocol.two_level
        slots = protocol.num_owners
        self.region = cluster.mc.new_region(
            f"lock[{lock_id}]", slots, initial=0, loopback=True,
            connections=cluster.config.nodes)
        # Per-node ll/sc flag (two-level path): holder proc id or None.
        self._node_flag: dict[int, int | None] = {
            n.id: None for n in cluster.nodes}
        self._node_cond = {
            n.id: Condition(cluster.sim, name=f"lockflag[{lock_id}][{n.id}]")
            for n in cluster.nodes}
        #: Current holder (global processor id) and FIFO of waiters.
        self._holder: int | None = None
        self._queue: deque[int] = deque()
        #: Simulated time at which the most recent release becomes
        #: globally visible. A contender whose local clock is earlier
        #: cannot observe the lock as free — simulated clocks can run far
        #: ahead of event-execution order (long atomic waits), and without
        #: this timestamp a temporally-earlier contender could slip into a
        #: critical section that logically has not ended yet.
        self._free_visible_at = 0.0
        self._grant = Condition(cluster.sim, name=f"lockgrant[{lock_id}]")
        self.contended_retries = 0
        #: Sim time the current holder completed its acquire (hold-span
        #: start for the event trace; valid while ``_holder`` is set).
        self._acquired_at = 0.0

    def _slot(self, proc: Processor) -> int:
        return self.protocol.owner_of(proc)

    def _failed_attempt_cost(self) -> float:
        """Time one losing test-and-back-off attempt burns: set the entry,
        wait for loop-back, scan the array, clear the entry."""
        costs = self.cluster.config.costs
        return (2 * costs.mc_lock_overhead + costs.mc_latency
                + 0.1 * len(self.region))

    # --- acquire -------------------------------------------------------------

    def acquire(self, proc: Processor):
        """Generator: acquire the lock, then run acquire-side consistency."""
        costs = self.cluster.config.costs
        mc = self.cluster.mc
        t_request = proc.clock
        if self.two_level:
            # Local ll/sc phase: at most one competitor per node.
            proc.charge(costs.llsc_lock, "protocol")
            node_id = proc.node.id
            while self._node_flag[node_id] is not None:
                yield Wait(self._node_cond[node_id],
                           lambda: self._node_flag[node_id] is None,
                           bucket="comm_wait")
            self._node_flag[node_id] = proc.global_id
            proc.charge(costs.two_level_lock_extra, "protocol")

        slot = self._slot(proc)
        if (self._holder is not None or self._queue
                or proc.clock < self._free_visible_at):
            # Contended: join the FIFO; one failed attempt is charged now
            # (we set our entry, saw a conflict, cleared it) and one more
            # on each handoff we lose.
            self.contended_retries += 1
            proc.charge(self._failed_attempt_cost(), "protocol")
            me = proc.global_id
            self._queue.append(me)
            yield Wait(self._grant,
                       lambda: self._holder is None
                       and self._queue and self._queue[0] == me
                       and proc.clock >= self._free_visible_at,
                       bucket="comm_wait")
            self._queue.popleft()

        # Winning attempt: claim first (the loop-back wait yields, and
        # another contender must see the lock as taken meanwhile), then
        # set our entry, wait for loop-back, read the array.
        self._holder = proc.global_id
        proc.charge(costs.mc_lock_overhead, "protocol")
        mc.write_word(self.region, slot, 1, proc.clock, category="sync")
        yield Sleep(costs.mc_latency, bucket="comm_wait")
        proc.charge(0.1 * len(self.region), "protocol")  # array scan
        self._acquired_at = proc.clock
        trace = self.protocol.trace
        if trace is not None:
            trace.span("lock_wait", proc, t_request,
                       proc.clock - t_request, obj=f"lock {self.lock_id}")

        proc.stats.bump("lock_acquires")
        self.protocol.acquire_sync(proc)
        tracer = self.protocol.tracer
        if tracer is not None:
            tracer.on_acquire(proc, ("lock", self.lock_id))

    # --- release -------------------------------------------------------------

    def release(self, proc: Processor) -> None:
        """Run release-side consistency, then free the lock (non-blocking)."""
        if self._holder != proc.global_id:
            raise SimulationError(
                f"processor {proc.global_id} does not hold lock "
                f"{self.lock_id} (holder: {self._holder})")
        self.protocol.release_sync(proc)
        tracer = self.protocol.tracer
        if tracer is not None:
            tracer.on_release(proc, ("lock", self.lock_id))
        costs = self.cluster.config.costs
        slot = self._slot(proc)
        proc.charge(costs.mc_lock_overhead, "protocol")
        self.cluster.mc.write_word(self.region, slot, 0, proc.clock,
                                   category="sync")
        trace = self.protocol.trace
        if trace is not None:
            trace.span("lock_hold", proc, self._acquired_at,
                       proc.clock - self._acquired_at,
                       obj=f"lock {self.lock_id}")
        self._holder = None
        # The release becomes globally visible after loop-back; waiters
        # (including any that park between now and then) wake at that time.
        visible = proc.clock + costs.mc_latency
        self._free_visible_at = visible
        sim = self.cluster.sim
        sim.schedule(max(visible, sim.now),
                     lambda: self._grant.fire(visible))
        if self.two_level:
            node_id = proc.node.id
            self._node_flag[node_id] = None
            proc.charge(costs.llsc_lock, "protocol")
            self._node_cond[node_id].fire(proc.clock)

"""Flags: single-writer synchronization variables in MC space.

Gauss uses one flag per matrix row to announce that the row is available
as a pivot (Section 3.2). Setting a flag is a release operation (local
modifications are flushed first, then the flag word is written, so a
waiter that observes the flag also observes the data); waiting on a flag
completes with an acquire operation.
"""

from __future__ import annotations

from ..cluster.machine import Cluster, Processor
from ..sim.process import Wait


class FlagSet:
    """A named array of monotonic flag words."""

    def __init__(self, cluster: Cluster, protocol, name: str,
                 count: int) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.name = name
        self.region = cluster.mc.new_region(
            f"flags[{name}]", count, initial=0, loopback=True,
            connections=cluster.config.nodes)

    def set(self, proc: Processor, index: int, value: int = 1) -> None:
        """Release: flush, then publish the flag (non-blocking)."""
        self.protocol.release_sync(proc)
        tracer = self.protocol.tracer
        if tracer is not None:
            tracer.on_release(proc, ("flag", self.name, index))
        proc.charge(self.cluster.config.costs.mc_word_write, "protocol")
        self.cluster.mc.write_word(self.region, index, value, proc.clock,
                                   category="sync")
        trace = self.protocol.trace
        if trace is not None:
            trace.instant("flag_set", proc, proc.clock,
                          obj=f"{self.name}[{index}]", value=value)

    def wait(self, proc: Processor, index: int, value: int = 1):
        """Generator: spin until the flag reaches ``value``, then acquire."""
        region = self.region
        t_enter = proc.clock

        def ready() -> bool:
            return region.read(index, proc.clock) >= value

        if not ready():
            yield Wait(region.visible, ready, bucket="comm_wait")
        proc.stats.bump("lock_acquires")  # Table 3 counts lock/flag together
        proc.stats.bump("flag_acquires")
        self.protocol.acquire_sync(proc)
        tracer = self.protocol.tracer
        if tracer is not None:
            tracer.on_acquire(proc, ("flag", self.name, index))
        trace = self.protocol.trace
        if trace is not None:
            trace.span("flag_wait", proc, t_enter, proc.clock - t_enter,
                       obj=f"{self.name}[{index}]")

    def peek(self, proc: Processor, index: int) -> int:
        """Read the flag without acquiring (no consistency action)."""
        return self.region.read(index, proc.clock)

"""Barriers (Section 2.3, "Synchronization").

The two-level barrier synchronizes processors inside a node through
shared memory; the last local arriver announces the node's arrival over
the Memory Channel in a per-node array, and everyone departs when all
node entries reach the episode number. Each processor, as it arrives,
performs page flushes for the (non-exclusive) pages for which it is the
last arriving local writer — waiting for all local arrivals before
flushing would serialize, and flushing earlier would duplicate traffic
(the protocol's ``barrier_release`` implements this policy).

Under the one-level protocols every processor is its own "node", so the
barrier degenerates to a flat array with one entry per processor —
cheaper at 2 processors (no local phase) but more expensive at 32
(Table 1: 41 us vs 58 us at 2 processors, 364 us vs 321 us at 32).

Topologies (DESIGN.md §15). The paper's barrier is **flat**: one
arrival array, every departing processor rescans all of it
(``barrier_spin`` per slot — O(slots), the term that blows up at 64
nodes). ``MachineConfig.barrier = "tree"`` switches the inter-node
phase to a **combining tree**: slots form a binary heap; each interior
slot's representative merges its subtree's arrivals and posts one
combine word up (``barrier_mc_phase`` CPU + one MC propagation per
hop), the root posts a single broadcast departure word, and every
waiter spins on that one word — O(log slots) departure latency,
O(1) spin. The intra-node gather (two-level) is unchanged, arrival
flushes and departure invalidations are identical, and data values are
byte-identical across topologies; only timing and the combine-hop
accounting (``barrier_combine_hops``) differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machine import Cluster, Processor
from ..sim.engine import Condition
from ..sim.process import Wait


@dataclass
class _NodeBarrierState:
    episode: int = 0
    arrived: int = 0


class _EpisodeState:
    """Departure bookkeeping for one in-flight barrier episode.

    Every announcing Memory Channel write is posted with a known
    visibility time, so the instant the *last* announcement of an episode
    is posted, the episode's departure time is simply the max of those
    visibility times. Waiters park on a per-episode condition fired once
    at exactly that instant, instead of being spuriously woken by every
    arrival write — the wake time, and therefore every ``comm_wait``
    charge, is identical to spinning on the arrival array (the increments
    all land in the same bucket), but the event count per barrier drops
    from O(slots x waiters) to one per waiter.
    """

    __slots__ = ("cond", "visible_at", "announced", "slot_visible")

    def __init__(self, cond: Condition, slots: int = 0) -> None:
        self.cond = cond
        self.visible_at = 0.0
        self.announced = 0
        #: Per-slot announcement visibility times; kept only under the
        #: tree topology, whose departure time depends on *which* slot
        #: each arrival landed in (heap position), not just the max.
        self.slot_visible: list[float] | None = \
            [0.0] * slots if slots else None


class Barrier:
    """The (single) application barrier object."""

    def __init__(self, cluster: Cluster, protocol) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.two_level = protocol.two_level
        slots = cluster.config.nodes if self.two_level \
            else cluster.config.total_procs
        self.slots = slots
        self.region = cluster.mc.new_region(
            "barrier", slots, initial=0, loopback=True,
            connections=cluster.config.nodes)
        self._node_state = [_NodeBarrierState() for _ in cluster.nodes]
        #: Combining-tree inter-node phase (MachineConfig.barrier="tree").
        self.tree = cluster.config.barrier == "tree"
        #: Interior heap slots (those with at least one child); their
        #: representatives each perform one combine-word write per episode.
        self._interior = slots // 2 if self.tree else 0
        #: Cumulative departure latency (last announcement posted ->
        #: departure visible) over all episodes, for the scale
        #: experiment's per-episode barrier-cost series.
        self.depart_latency_us = 0.0
        #: In-flight episode departures (target episode -> state); an
        #: entry is dropped when its departure fire executes, which is
        #: safe because no processor can still park for an episode whose
        #: departure time has passed (its predicate would be true).
        self._episodes_pending: dict[int, _EpisodeState] = {}
        #: Highest episode whose departure fire has executed.
        self._completed_through = 0
        #: Completed barrier episodes (the Table 3 "Barriers" row).
        self.episodes = 0

    def _episode(self, target: int) -> _EpisodeState:
        ep = self._episodes_pending.get(target)
        if ep is None:
            ep = _EpisodeState(Condition(self.cluster.sim,
                                         name=f"barrier-ep{target}"),
                               slots=self.slots if self.tree else 0)
            if target > self._completed_through:
                self._episodes_pending[target] = ep
            # else: throwaway — the episode already departed; the caller's
            # predicate falls back to ``_completed_through`` and never parks.
        return ep

    def _note_announcement(self, target: int, slot: int) -> None:
        """Record one announcing MC write for ``target``; on the last one,
        schedule the single departure fire at the max visibility time."""
        ep = self._episode(target)
        visible = self.region.words[slot].last_visible_at()
        if visible > ep.visible_at:
            ep.visible_at = visible
        if ep.slot_visible is not None:
            ep.slot_visible[slot] = visible
        ep.announced += 1
        if ep.announced == self.slots:
            sim = self.cluster.sim
            if self.tree:
                ep.visible_at = self._tree_departure(ep.slot_visible)
            self.depart_latency_us += max(0.0, ep.visible_at - sim.now)

            def depart() -> None:
                self._episodes_pending.pop(target, None)
                if target > self._completed_through:
                    self._completed_through = target
                ep.cond.fire(ep.visible_at)

            sim.schedule(max(ep.visible_at, sim.now), depart)

    def _tree_departure(self, slot_visible: list[float]) -> float:
        """Departure time of one episode under the combining tree.

        Slots form a binary heap (children of *i* are *2i+1*, *2i+2*).
        An interior slot's representative posts its combine word once its
        own arrival and both children's combine words are visible —
        ``barrier_mc_phase`` CPU for the write plus one Memory Channel
        propagation per hop — and the root's combined word doubles as the
        broadcast departure flag every waiter spins on. Latency is
        O(log slots) hops off the slowest leaf instead of one global max,
        and the combine words (interior slots, the root's included) are
        accounted as sync traffic here.
        """
        slots = self.slots
        costs = self.cluster.config.costs
        hop = costs.barrier_mc_phase + costs.mc_latency
        done = list(slot_visible)
        for i in range(slots - 1, -1, -1):
            left, right = 2 * i + 1, 2 * i + 2
            t = done[i]
            if left < slots:
                t = max(t, done[left])
                if right < slots:
                    t = max(t, done[right])
                t += hop  # this slot's combine write, propagated
            done[i] = t
        if self._interior:
            self.cluster.mc.account("sync", 4 * self._interior)
        return done[0]

    def wait(self, proc: Processor):
        """Generator: arrive, flush, announce, spin for departure, acquire."""
        costs = self.cluster.config.costs
        mc = self.cluster.mc
        tracer = self.protocol.tracer
        trace = self.protocol.trace
        t_enter = proc.clock

        # Arrival-side consistency: flush pages we are the last local
        # writer of (two-level) or a plain release (one-level).
        self.protocol.barrier_release(proc)

        announced_here = False
        if self.two_level:
            slot = proc.node.id
            ns = self._node_state[slot]
            target = ns.episode + 1
            proc.charge(costs.barrier_local_phase + costs.llsc_lock,
                        "protocol")
            ns.arrived += 1
            if ns.arrived == len(proc.node.processors):
                # Last local arriver announces the node on the MC. It also
                # absorbed the serialized ll/sc counter updates of its
                # local peers on the way in.
                ns.arrived = 0
                ns.episode = target
                announced_here = True
                proc.charge(costs.barrier_local_phase
                            * (len(proc.node.processors) - 1), "protocol")
                proc.charge(costs.barrier_mc_phase, "protocol")
                mc.write_word(self.region, slot, target, proc.clock,
                              category="sync")
                self._note_announcement(target, slot)
                if slot == 0:
                    self.episodes = target
        else:
            slot = proc.global_id
            target = self.region.words[slot].latest() + 1
            announced_here = True
            proc.charge(costs.barrier_mc_phase, "protocol")
            mc.write_word(self.region, slot, target, proc.clock,
                          category="sync")
            self._note_announcement(target, slot)
            if slot == 0:
                self.episodes = target

        if tracer is not None:
            # Arrival is a release: all flushes for this episode ran above.
            tracer.on_barrier_arrive(proc, target)
        if trace is not None:
            trace.instant("barrier_arrive", proc, proc.clock, obj=target)

        nslots = self.slots
        ep = self._episode(target)

        def departed() -> bool:
            # Equivalent to scanning the arrival array: every slot shows
            # ``target`` exactly when all announcements are posted *and*
            # visible by this processor's clock (same epsilon as
            # VersionedWord.read). The fallback covers a processor whose
            # captured state is a throwaway because the departure fire
            # already ran — the episode is then over by construction.
            if ep.announced == nslots:
                return proc.clock + 1e-6 >= ep.visible_at
            return target <= self._completed_through

        if not departed():
            yield Wait(ep.cond, departed, bucket="comm_wait")
        if self.tree:
            # O(1) departure: every waiter polls only the root's broadcast
            # word (plus its own subtree word while combining), and each
            # interior slot's representative pays for the one combine
            # write it performed during the wait window.
            proc.charge(costs.barrier_spin * min(nslots, 2), "protocol")
            if announced_here and slot < self._interior:
                proc.charge(costs.barrier_mc_phase, "protocol")
                proc.stats.bump("barrier_combine_hops")
        else:
            # Departure-side spinning on the arrival array (waiters rescan
            # it as arrivals trickle in; scales with the number of slots).
            proc.charge(costs.barrier_spin * nslots, "protocol")
        proc.stats.bump("barriers_crossed")

        # Departure-side consistency: process write notices, invalidate.
        self.protocol.acquire_sync(proc)
        if tracer is not None:
            tracer.on_barrier_depart(proc, target)
        if trace is not None:
            trace.span("barrier", proc, t_enter, proc.clock - t_enter,
                       obj=target)

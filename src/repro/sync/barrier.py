"""Barriers (Section 2.3, "Synchronization").

The two-level barrier synchronizes processors inside a node through
shared memory; the last local arriver announces the node's arrival over
the Memory Channel in a per-node array, and everyone departs when all
node entries reach the episode number. Each processor, as it arrives,
performs page flushes for the (non-exclusive) pages for which it is the
last arriving local writer — waiting for all local arrivals before
flushing would serialize, and flushing earlier would duplicate traffic
(the protocol's ``barrier_release`` implements this policy).

Under the one-level protocols every processor is its own "node", so the
barrier degenerates to a flat array with one entry per processor —
cheaper at 2 processors (no local phase) but more expensive at 32
(Table 1: 41 us vs 58 us at 2 processors, 364 us vs 321 us at 32).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machine import Cluster, Processor
from ..sim.engine import Condition
from ..sim.process import Wait


@dataclass
class _NodeBarrierState:
    episode: int = 0
    arrived: int = 0


class _EpisodeState:
    """Departure bookkeeping for one in-flight barrier episode.

    Every announcing Memory Channel write is posted with a known
    visibility time, so the instant the *last* announcement of an episode
    is posted, the episode's departure time is simply the max of those
    visibility times. Waiters park on a per-episode condition fired once
    at exactly that instant, instead of being spuriously woken by every
    arrival write — the wake time, and therefore every ``comm_wait``
    charge, is identical to spinning on the arrival array (the increments
    all land in the same bucket), but the event count per barrier drops
    from O(slots x waiters) to one per waiter.
    """

    __slots__ = ("cond", "visible_at", "announced")

    def __init__(self, cond: Condition) -> None:
        self.cond = cond
        self.visible_at = 0.0
        self.announced = 0


class Barrier:
    """The (single) application barrier object."""

    def __init__(self, cluster: Cluster, protocol) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.two_level = protocol.two_level
        slots = cluster.config.nodes if self.two_level \
            else cluster.config.total_procs
        self.slots = slots
        self.region = cluster.mc.new_region(
            "barrier", slots, initial=0, loopback=True,
            connections=cluster.config.nodes)
        self._node_state = [_NodeBarrierState() for _ in cluster.nodes]
        #: In-flight episode departures (target episode -> state); an
        #: entry is dropped when its departure fire executes, which is
        #: safe because no processor can still park for an episode whose
        #: departure time has passed (its predicate would be true).
        self._episodes_pending: dict[int, _EpisodeState] = {}
        #: Highest episode whose departure fire has executed.
        self._completed_through = 0
        #: Completed barrier episodes (the Table 3 "Barriers" row).
        self.episodes = 0

    def _episode(self, target: int) -> _EpisodeState:
        ep = self._episodes_pending.get(target)
        if ep is None:
            ep = _EpisodeState(Condition(self.cluster.sim,
                                         name=f"barrier-ep{target}"))
            if target > self._completed_through:
                self._episodes_pending[target] = ep
            # else: throwaway — the episode already departed; the caller's
            # predicate falls back to ``_completed_through`` and never parks.
        return ep

    def _note_announcement(self, target: int, slot: int) -> None:
        """Record one announcing MC write for ``target``; on the last one,
        schedule the single departure fire at the max visibility time."""
        ep = self._episode(target)
        visible = self.region.words[slot].last_visible_at()
        if visible > ep.visible_at:
            ep.visible_at = visible
        ep.announced += 1
        if ep.announced == self.slots:
            sim = self.cluster.sim

            def depart() -> None:
                self._episodes_pending.pop(target, None)
                if target > self._completed_through:
                    self._completed_through = target
                ep.cond.fire(ep.visible_at)

            sim.schedule(max(ep.visible_at, sim.now), depart)

    def wait(self, proc: Processor):
        """Generator: arrive, flush, announce, spin for departure, acquire."""
        costs = self.cluster.config.costs
        mc = self.cluster.mc
        tracer = self.protocol.tracer
        trace = self.protocol.trace
        t_enter = proc.clock

        # Arrival-side consistency: flush pages we are the last local
        # writer of (two-level) or a plain release (one-level).
        self.protocol.barrier_release(proc)

        if self.two_level:
            ns = self._node_state[proc.node.id]
            target = ns.episode + 1
            proc.charge(costs.barrier_local_phase + costs.llsc_lock,
                        "protocol")
            ns.arrived += 1
            if ns.arrived == len(proc.node.processors):
                # Last local arriver announces the node on the MC. It also
                # absorbed the serialized ll/sc counter updates of its
                # local peers on the way in.
                ns.arrived = 0
                ns.episode = target
                proc.charge(costs.barrier_local_phase
                            * (len(proc.node.processors) - 1), "protocol")
                proc.charge(costs.barrier_mc_phase, "protocol")
                mc.write_word(self.region, proc.node.id, target, proc.clock,
                              category="sync")
                self._note_announcement(target, proc.node.id)
                if proc.node.id == 0:
                    self.episodes = target
        else:
            slot = proc.global_id
            target = self.region.words[slot].latest() + 1
            proc.charge(costs.barrier_mc_phase, "protocol")
            mc.write_word(self.region, slot, target, proc.clock,
                          category="sync")
            self._note_announcement(target, slot)
            if slot == 0:
                self.episodes = target

        if tracer is not None:
            # Arrival is a release: all flushes for this episode ran above.
            tracer.on_barrier_arrive(proc, target)
        if trace is not None:
            trace.instant("barrier_arrive", proc, proc.clock, obj=target)

        nslots = self.slots
        ep = self._episode(target)

        def departed() -> bool:
            # Equivalent to scanning the arrival array: every slot shows
            # ``target`` exactly when all announcements are posted *and*
            # visible by this processor's clock (same epsilon as
            # VersionedWord.read). The fallback covers a processor whose
            # captured state is a throwaway because the departure fire
            # already ran — the episode is then over by construction.
            if ep.announced == nslots:
                return proc.clock + 1e-6 >= ep.visible_at
            return target <= self._completed_through

        if not departed():
            yield Wait(ep.cond, departed, bucket="comm_wait")
        # Departure-side spinning on the arrival array (waiters rescan it
        # as arrivals trickle in; scales with the number of slots).
        proc.charge(costs.barrier_spin * nslots, "protocol")
        proc.stats.bump("barriers_crossed")

        # Departure-side consistency: process write notices, invalidate.
        self.protocol.acquire_sync(proc)
        if tracer is not None:
            tracer.on_barrier_depart(proc, target)
        if trace is not None:
            trace.span("barrier", proc, t_enter, proc.clock - t_enter,
                       obj=target)

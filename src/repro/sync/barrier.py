"""Barriers (Section 2.3, "Synchronization").

The two-level barrier synchronizes processors inside a node through
shared memory; the last local arriver announces the node's arrival over
the Memory Channel in a per-node array, and everyone departs when all
node entries reach the episode number. Each processor, as it arrives,
performs page flushes for the (non-exclusive) pages for which it is the
last arriving local writer — waiting for all local arrivals before
flushing would serialize, and flushing earlier would duplicate traffic
(the protocol's ``barrier_release`` implements this policy).

Under the one-level protocols every processor is its own "node", so the
barrier degenerates to a flat array with one entry per processor —
cheaper at 2 processors (no local phase) but more expensive at 32
(Table 1: 41 us vs 58 us at 2 processors, 364 us vs 321 us at 32).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machine import Cluster, Processor
from ..sim.process import Wait


@dataclass
class _NodeBarrierState:
    episode: int = 0
    arrived: int = 0


class Barrier:
    """The (single) application barrier object."""

    def __init__(self, cluster: Cluster, protocol) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.two_level = protocol.two_level
        slots = cluster.config.nodes if self.two_level \
            else cluster.config.total_procs
        self.slots = slots
        self.region = cluster.mc.new_region(
            "barrier", slots, initial=0, loopback=True,
            connections=cluster.config.nodes)
        self._node_state = [_NodeBarrierState() for _ in cluster.nodes]
        #: Completed barrier episodes (the Table 3 "Barriers" row).
        self.episodes = 0

    def wait(self, proc: Processor):
        """Generator: arrive, flush, announce, spin for departure, acquire."""
        costs = self.cluster.config.costs
        mc = self.cluster.mc
        tracer = self.protocol.tracer
        trace = self.protocol.trace
        t_enter = proc.clock

        # Arrival-side consistency: flush pages we are the last local
        # writer of (two-level) or a plain release (one-level).
        self.protocol.barrier_release(proc)

        if self.two_level:
            ns = self._node_state[proc.node.id]
            target = ns.episode + 1
            proc.charge(costs.barrier_local_phase + costs.llsc_lock,
                        "protocol")
            ns.arrived += 1
            if ns.arrived == len(proc.node.processors):
                # Last local arriver announces the node on the MC. It also
                # absorbed the serialized ll/sc counter updates of its
                # local peers on the way in.
                ns.arrived = 0
                ns.episode = target
                proc.charge(costs.barrier_local_phase
                            * (len(proc.node.processors) - 1), "protocol")
                proc.charge(costs.barrier_mc_phase, "protocol")
                mc.write_word(self.region, proc.node.id, target, proc.clock,
                              category="sync")
                if proc.node.id == 0:
                    self.episodes = target
        else:
            slot = proc.global_id
            target = self.region.words[slot].latest() + 1
            proc.charge(costs.barrier_mc_phase, "protocol")
            mc.write_word(self.region, slot, target, proc.clock,
                          category="sync")
            if slot == 0:
                self.episodes = target

        if tracer is not None:
            # Arrival is a release: all flushes for this episode ran above.
            tracer.on_barrier_arrive(proc, target)
        if trace is not None:
            trace.instant("barrier_arrive", proc, proc.clock, obj=target)

        region = self.region
        nslots = self.slots

        def all_arrived() -> bool:
            clock = proc.clock
            return all(region.read(i, clock) >= target
                       for i in range(nslots))

        if not all_arrived():
            yield Wait(region.visible, all_arrived, bucket="comm_wait")
        # Departure-side spinning on the arrival array (waiters rescan it
        # as arrivals trickle in; scales with the number of slots).
        proc.charge(costs.barrier_spin * nslots, "protocol")
        proc.stats.bump("barriers_crossed")

        # Departure-side consistency: process write notices, invalidate.
        self.protocol.acquire_sync(proc)
        if tracer is not None:
            tracer.on_barrier_depart(proc, target)
        if trace is not None:
            trace.span("barrier", proc, t_enter, proc.clock - t_enter,
                       obj=target)

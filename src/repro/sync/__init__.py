"""Synchronization primitives: MC locks, two-level barriers, flags."""

from .barrier import Barrier
from .flag import FlagSet
from .mclock import MCLock

__all__ = ["MCLock", "Barrier", "FlagSet"]
